package simcluster

import (
	"testing"
	"time"

	"pvfscache/internal/microbench"
	"pvfscache/internal/sim"
)

func runOnce(t *testing.T, caching bool, mb microbench.Params, pl Placement, nodes int) Result {
	t.Helper()
	env := sim.NewEnv()
	c := New(env, DefaultParams(), 4, nodes, caching)
	res, err := Run(c, mb, pl)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func baseRead() microbench.Params {
	return microbench.Params{
		Instances:   1,
		Nodes:       2,
		RequestSize: 64 << 10,
		TotalBytes:  2 << 20,
		Read:        true,
		Seed:        1,
	}
}

func TestRunCompletesNoCaching(t *testing.T) {
	mb := baseRead()
	res := runOnce(t, false, mb, SameNodes(1, 2), 2)
	if res.Requests != 2*mb.Requests() {
		t.Errorf("requests = %d, want %d", res.Requests, 2*mb.Requests())
	}
	if res.MaxInstanceTime() <= 0 {
		t.Error("zero completion time")
	}
	if res.Hits != 0 || res.Misses != 0 {
		t.Error("no-caching run recorded cache activity")
	}
}

func TestRunCompletesCaching(t *testing.T) {
	mb := baseRead()
	mb.Locality = 0.5
	res := runOnce(t, true, mb, SameNodes(1, 2), 2)
	if res.Hits == 0 {
		t.Error("locality 0.5 produced no cache hits")
	}
	if res.MaxInstanceTime() <= 0 {
		t.Error("zero completion time")
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	mb := baseRead()
	mb.Locality = 0.5
	mb.Sharing = 0.5
	mb.Instances = 2
	a := runOnce(t, true, mb, SameNodes(2, 2), 2)
	b := runOnce(t, true, mb, SameNodes(2, 2), 2)
	if a.MaxInstanceTime() != b.MaxInstanceTime() {
		t.Errorf("nondeterministic: %v vs %v", a.MaxInstanceTime(), b.MaxInstanceTime())
	}
	if a.Hits != b.Hits || a.Misses != b.Misses {
		t.Errorf("nondeterministic counters: %d/%d vs %d/%d", a.Hits, a.Misses, b.Hits, b.Misses)
	}
}

func TestFullLocalityCachingBeatsNoCaching(t *testing.T) {
	mb := baseRead()
	mb.Locality = 1.0
	cached := runOnce(t, true, mb, SameNodes(1, 2), 2)
	direct := runOnce(t, false, mb, SameNodes(1, 2), 2)
	if cached.MaxInstanceTime() >= direct.MaxInstanceTime() {
		t.Errorf("l=1: caching %v should beat no-caching %v",
			cached.MaxInstanceTime(), direct.MaxInstanceTime())
	}
}

func TestZeroLocalityOverheadSmall(t *testing.T) {
	// Figure 4(a): with no locality, the caching version must be close to
	// the original (small overhead), not dramatically worse.
	mb := baseRead()
	mb.Locality = 0
	cached := runOnce(t, true, mb, SameNodes(1, 2), 2)
	direct := runOnce(t, false, mb, SameNodes(1, 2), 2)
	ratio := float64(cached.MaxInstanceTime()) / float64(direct.MaxInstanceTime())
	if ratio > 1.25 {
		t.Errorf("l=0 caching overhead ratio %.2f too large (cached %v vs %v)",
			ratio, cached.MaxInstanceTime(), direct.MaxInstanceTime())
	}
}

func TestWriteBehindBeatsDirectWrites(t *testing.T) {
	// Figure 4(b): the caching version wins for writes even with l=0,
	// because writes complete in memory and flush in the background.
	mb := baseRead()
	mb.Read = false
	mb.Locality = 0
	mb.RequestSize = 16 << 10
	cached := runOnce(t, true, mb, SameNodes(1, 2), 2)
	direct := runOnce(t, false, mb, SameNodes(1, 2), 2)
	if cached.MaxInstanceTime() >= direct.MaxInstanceTime() {
		t.Errorf("writes: caching %v should beat no-caching %v",
			cached.MaxInstanceTime(), direct.MaxInstanceTime())
	}
}

func TestSharingImprovesSecondInstance(t *testing.T) {
	// Figure 6 mechanism: two instances sharing 100% of their data on the
	// same nodes finish faster with caching than without, even at l=0.
	mb := baseRead()
	mb.Instances = 2
	mb.Locality = 0
	mb.Sharing = 1.0
	cached := runOnce(t, true, mb, SameNodes(2, 2), 2)
	direct := runOnce(t, false, mb, SameNodes(2, 2), 2)
	if cached.MaxInstanceTime() >= direct.MaxInstanceTime() {
		t.Errorf("s=100%%: caching %v should beat no-caching %v",
			cached.MaxInstanceTime(), direct.MaxInstanceTime())
	}
	if cached.Hits+cached.Joins == 0 {
		t.Error("inter-application sharing produced neither hits nor fetch joins")
	}
}

func TestMoreSharingMoreBenefit(t *testing.T) {
	mb := baseRead()
	mb.Instances = 2
	mb.Locality = 0
	var times []time.Duration
	for _, s := range []float64{0.25, 1.0} {
		mb.Sharing = s
		res := runOnce(t, true, mb, SameNodes(2, 2), 2)
		times = append(times, res.MaxInstanceTime())
	}
	if times[1] >= times[0] {
		t.Errorf("s=100%% (%v) should beat s=25%% (%v)", times[1], times[0])
	}
}

func TestPlacements(t *testing.T) {
	same := SameNodes(2, 3)
	if len(same.InstanceNodes) != 2 || same.MaxNode() != 2 {
		t.Errorf("SameNodes: %+v", same)
	}
	disj := DisjointNodes(2, 3)
	if disj.MaxNode() != 5 {
		t.Errorf("DisjointNodes max = %d", disj.MaxNode())
	}
	for i, nodes := range disj.InstanceNodes {
		for k, n := range nodes {
			if n != i*3+k {
				t.Errorf("disjoint[%d][%d] = %d", i, k, n)
			}
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	mb := baseRead()
	env := sim.NewEnv()
	c := New(env, DefaultParams(), 4, 1, false)
	// Placement instance count mismatch.
	if _, err := Run(c, mb, SameNodes(2, 2)); err == nil {
		t.Error("expected instance-count mismatch error")
	}
	// Placement exceeds cluster nodes.
	env2 := sim.NewEnv()
	c2 := New(env2, DefaultParams(), 4, 1, false)
	if _, err := Run(c2, mb, SameNodes(1, 2)); err == nil {
		t.Error("expected node-range error")
	}
}

func TestColocationVsSpreadFullLocality(t *testing.T) {
	// Figure 8(c) headline: at l=1 the cached co-located run beats the
	// uncached spread run.
	mb := baseRead()
	mb.Instances = 2
	mb.Nodes = 3
	mb.Locality = 1.0
	mb.Sharing = 0.5
	cachedColoc := runOnce(t, true, mb, SameNodes(2, 3), 3)
	directSpread := runOnce(t, false, mb, DisjointNodes(2, 3), 6)
	if cachedColoc.MaxInstanceTime() >= directSpread.MaxInstanceTime() {
		t.Errorf("l=1: cached co-located %v should beat uncached spread %v",
			cachedColoc.MaxInstanceTime(), directSpread.MaxInstanceTime())
	}
}

func TestColocationVsSpreadZeroLocality(t *testing.T) {
	// Figure 8(a) headline: at l=0 parallelism wins — the uncached spread
	// run beats the cached co-located run.
	mb := baseRead()
	mb.Instances = 2
	mb.Nodes = 3
	mb.Locality = 0
	mb.Sharing = 0.25
	cachedColoc := runOnce(t, true, mb, SameNodes(2, 3), 3)
	directSpread := runOnce(t, false, mb, DisjointNodes(2, 3), 6)
	if directSpread.MaxInstanceTime() >= cachedColoc.MaxInstanceTime() {
		t.Errorf("l=0: uncached spread %v should beat cached co-located %v",
			directSpread.MaxInstanceTime(), cachedColoc.MaxInstanceTime())
	}
}

func TestSyncWriteInvalidatesInSim(t *testing.T) {
	env := sim.NewEnv()
	c := New(env, DefaultParams(), 2, 2, true)
	id := c.CreateFile("x", 1<<20, true)
	_, meta := c.Lookup("x")

	done := 0
	env.Go("reader-then-check", func(p *sim.Proc) {
		// Node 0 reads, caching blocks.
		c.Read(p, c.Nodes[0], id, meta, 0, 64<<10)
		if c.Nodes[0].Cache.Stats().Resident == 0 {
			t.Error("node 0 cache empty after read")
		}
		// Node 1 sync-writes the same range.
		c.SyncWrite(p, c.Nodes[1], id, meta, 0, 64<<10)
		// Node 0's copies must be gone.
		if got := c.Nodes[0].Cache.Stats().Resident; got != 0 {
			t.Errorf("node 0 still holds %d blocks after invalidation", got)
		}
		done++
		c.Finish()
	})
	env.Run()
	if done != 1 {
		t.Fatal("sim process did not finish")
	}
}

func TestWarmVsColdFirstRead(t *testing.T) {
	// A cold file pays disk time on first access; a warm one does not.
	read := func(warm bool) time.Duration {
		env := sim.NewEnv()
		c := New(env, DefaultParams(), 1, 1, false)
		id := c.CreateFile("f", 1<<20, warm)
		_, meta := c.Lookup("f")
		var took time.Duration
		env.Go("r", func(p *sim.Proc) {
			t0 := env.Now()
			c.Read(p, c.Nodes[0], id, meta, 0, 64<<10)
			took = env.Now() - t0
			c.Finish()
		})
		env.Run()
		return took
	}
	cold := read(false)
	warm := read(true)
	if cold <= warm {
		t.Errorf("cold read %v should exceed warm read %v", cold, warm)
	}
	if cold-warm < 10*time.Millisecond {
		t.Errorf("disk penalty %v implausibly small", cold-warm)
	}
}

// TestPipelinedFlushShortensDrain validates the write-behind pipeline
// model: the same write workload must finish no later — and with a full
// dirty cache across several iods, strictly earlier — when the flusher
// drains with parallel streams and a message window than with the serial
// calibration default. The serial configuration stays the deterministic
// baseline the figures are regenerated with.
func TestPipelinedFlushShortensDrain(t *testing.T) {
	mb := microbench.Params{
		Instances:   1,
		Nodes:       1,
		RequestSize: 256 << 10,
		TotalBytes:  4 << 20,
		Read:        false,
		Seed:        1,
	}
	run := func(streams, window int) time.Duration {
		env := sim.NewEnv()
		p := DefaultParams()
		p.FlushStreams = streams
		p.FlushWindow = window
		c := New(env, p, 4, 1, true)
		res, err := Run(c, mb, SameNodes(1, 1))
		if err != nil {
			t.Fatalf("run(streams=%d, window=%d): %v", streams, window, err)
		}
		return res.MaxInstanceTime()
	}
	serial := run(1, 1)
	piped := run(4, 4)
	if piped > serial {
		t.Fatalf("pipelined drain slower than serial: %v > %v", piped, serial)
	}
	if piped == serial {
		t.Logf("warning: pipelined flush made no virtual-time difference (serial=%v)", serial)
	}
	// Determinism: the pipelined configuration must reproduce itself.
	if again := run(4, 4); again != piped {
		t.Fatalf("pipelined run not deterministic: %v vs %v", piped, again)
	}
}
