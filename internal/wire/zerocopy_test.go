package wire

import (
	"bytes"
	"testing"

	"pvfscache/internal/blockio"
)

// TestVectoredEncodeMatchesCopyingEncode checks that the scatter-gather
// frame writer (head + payload tail) produces byte-identical frames to
// the copying encoder for every dataTail message, at sizes straddling the
// minVecTail threshold.
func TestVectoredEncodeMatchesCopyingEncode(t *testing.T) {
	sizes := []int{0, 1, minVecTail - 1, minVecTail, minVecTail + 1, 64 << 10}
	for _, n := range sizes {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 31)
		}
		msgs := []Message{
			&ReadResp{Status: StatusOK, Data: data},
			&ReadBlocksResp{Status: StatusOK, Lens: []uint32{uint32(n)}, Data: data},
			&Write{Client: 7, File: 3, Offset: 99, Data: data},
			&SyncWrite{Client: 7, File: 3, Offset: 99, Data: data},
			&PeerGetResp{Status: StatusOK, Data: data},
			&PeerPut{File: 3, Index: 5, Owner: 2, Data: data},
		}
		for _, m := range msgs {
			var vec bytes.Buffer
			if err := WriteTagged(&vec, 42, m); err != nil {
				t.Fatalf("%v (%d bytes): %v", m.WireType(), n, err)
			}
			// Reference: the copying encoder via appendFrame.
			ref, err := appendFrame(nil, 42, true, m)
			if err != nil {
				t.Fatalf("%v (%d bytes): %v", m.WireType(), n, err)
			}
			if !bytes.Equal(vec.Bytes(), ref) {
				t.Fatalf("%v (%d bytes): vectored frame differs from copying frame", m.WireType(), n)
			}
		}
	}
}

// TestAliasedDecodeMatchesCopyingDecode round-trips every data-carrying
// message through both decode modes and checks they agree, that the
// aliased form really aliases the returned payload buffer, and that
// payload-free messages retain nothing.
func TestAliasedDecodeMatchesCopyingDecode(t *testing.T) {
	data := bytes.Repeat([]byte{0xC4, 0x11, 0x7E}, 1500)
	aliasing := []Message{
		&ReadResp{Status: StatusOK, Data: data},
		&ReadBlocksResp{Status: StatusOK, Lens: []uint32{uint32(len(data))}, Data: data},
		&Write{Client: 1, File: 2, Offset: 3, Data: data},
		&SyncWrite{Client: 1, File: 2, Offset: 3, Data: data},
		&PeerGetResp{Status: StatusOK, Data: data},
		&PeerPut{File: 2, Index: 9, Owner: 1, Data: data},
		&Flush{Client: 1, File: 2, Blocks: []FlushBlock{{Index: 4, Off: 8, Data: data}}},
	}
	for _, m := range aliasing {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()

		_, _, copied, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v: copying decode: %v", m.WireType(), err)
		}
		_, _, aliased, payload, err := ReadFrameAliased(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v: aliased decode: %v", m.WireType(), err)
		}
		if payload == nil {
			t.Fatalf("%v: aliased decode retained no payload", m.WireType())
		}
		cData, aData := payloadOf(t, copied), payloadOf(t, aliased)
		if !bytes.Equal(cData, aData) || !bytes.Equal(cData, data) {
			t.Fatalf("%v: decode modes disagree", m.WireType())
		}
		if !aliasesInto(aData, payload) {
			t.Fatalf("%v: aliased Data does not point into the payload buffer", m.WireType())
		}
		// Poison-on-release must be visible through the live alias: that
		// is exactly how the lease tests catch use-after-release.
		SetPoisonReleased(true)
		ReleasePayload(payload)
		SetPoisonReleased(false)
		if aData[0] != PoisonByte || aData[len(aData)-1] != PoisonByte {
			t.Fatalf("%v: released payload was not poisoned", m.WireType())
		}
	}

	// A message with no bulk payload must not retain the buffer.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Open{Name: "some/file"}); err != nil {
		t.Fatal(err)
	}
	_, _, m, payload, err := ReadFrameAliased(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		t.Fatalf("payload-free %v retained a payload buffer", m.WireType())
	}
	if m.(*Open).Name != "some/file" {
		t.Fatal("string field corrupted by aliased decode")
	}
}

// payloadOf extracts the bulk Data field of a data-carrying message.
func payloadOf(t *testing.T, m Message) []byte {
	t.Helper()
	switch v := m.(type) {
	case *ReadResp:
		return v.Data
	case *ReadBlocksResp:
		return v.Data
	case *Write:
		return v.Data
	case *SyncWrite:
		return v.Data
	case *PeerGetResp:
		return v.Data
	case *PeerPut:
		return v.Data
	case *Flush:
		return v.Blocks[0].Data
	default:
		t.Fatalf("no payload accessor for %v", m.WireType())
		return nil
	}
}

// aliasesInto reports whether sub's backing array lies within buf's.
func aliasesInto(sub, buf []byte) bool {
	if len(sub) == 0 || len(buf) == 0 {
		return false
	}
	for i := range buf {
		if &buf[i] == &sub[0] {
			return true
		}
	}
	return false
}

// TestAliasedDecodeHostileInput replays the copying decoder's hostile
// cases through the aliased decoder: truncated payloads and counts must
// be rejected without retaining (or leaking) the buffer.
func TestAliasedDecodeHostileInput(t *testing.T) {
	good := Marshal(&ReadResp{Status: StatusOK, Data: bytes.Repeat([]byte{1}, 64)})
	for cut := 7; cut < len(good); cut += 11 {
		if _, _, _, payload, err := ReadFrameAliased(bytes.NewReader(good[:cut])); err == nil || payload != nil {
			t.Fatalf("truncated frame at %d accepted (payload=%v)", cut, payload != nil)
		}
	}
}

func TestAliasedFlushBlockKeys(t *testing.T) {
	m := &Flush{Client: 1, File: blockio.FileID(9)}
	for i := 0; i < 4; i++ {
		m.Blocks = append(m.Blocks, FlushBlock{Index: int64(i), Data: bytes.Repeat([]byte{byte(i)}, 2048)})
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	_, _, got, payload, err := ReadFrameAliased(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePayload(payload)
	f := got.(*Flush)
	if len(f.Blocks) != 4 {
		t.Fatalf("decoded %d blocks", len(f.Blocks))
	}
	for i, blk := range f.Blocks {
		if blk.Index != int64(i) || len(blk.Data) != 2048 || blk.Data[0] != byte(i) {
			t.Fatalf("block %d corrupt after aliased decode", i)
		}
		if !aliasesInto(blk.Data, payload) {
			t.Fatalf("block %d does not alias the payload", i)
		}
	}
}
