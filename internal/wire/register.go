package wire

// Register announces a client cache to an iod: it carries the client's ID
// and the address of its invalidation listener. The iod uses the address to
// deliver Invalidate messages when other clients issue sync-writes to
// blocks this client caches.
type Register struct {
	Client uint32
	Addr   string
}

// RegisterAck acknowledges a Register.
type RegisterAck struct{ Status Status }

// Registration message types (coherence group).
const (
	TRegister    Type = 0x0403
	TRegisterAck Type = 0x0404
)

// WireType implementations.
func (*Register) WireType() Type    { return TRegister }
func (*RegisterAck) WireType() Type { return TRegisterAck }

func (m *Register) append(b []byte) []byte {
	b = apU32(b, m.Client)
	return apStr(b, m.Addr)
}

func (m *Register) decode(r *reader) error {
	var err error
	if m.Client, err = r.u32(); err != nil {
		return err
	}
	m.Addr, err = r.str()
	return err
}

func (m *RegisterAck) append(b []byte) []byte { return apU16(b, uint16(m.Status)) }

func (m *RegisterAck) decode(r *reader) error {
	s, err := r.u16()
	m.Status = Status(s)
	return err
}
