// Package wire defines the binary protocol spoken between the PVFS client
// library, the metadata server (mgr), the I/O daemons (iod), and the cache
// module's background threads (flusher, coherence).
//
// Framing is [u32 payload length][u16 message type][payload]. All integers
// are big-endian. Variable-length fields are length-prefixed. The format is
// hand-rolled on encoding/binary so the module stays stdlib-only.
//
// A frame may additionally carry a request tag so that responses can
// complete out of order (see internal/rpc): when the high bit of the
// length word is set, a u64 tag follows the type and the length counts
// type + tag + payload. Untagged peers never set the bit, and a legacy
// reader that receives a tagged frame fails cleanly with ErrTooLarge
// rather than misparsing, because the bit lies far above MaxMessageSize.
//
// The protocol deliberately mirrors the structure described in the paper:
// data reads/writes and sync-writes travel on an iod's data port, flushes
// travel on a separate flush port served by the iod-side flusher peer, and
// invalidations travel from iods to the per-node cache module.
//
// Reads come in two shapes: Read fetches one contiguous range, and
// ReadBlocks (see vector.go) fetches several disjoint extents of a file
// from one iod in a single round trip — the cache module's miss engine
// and readahead prefetcher, and libpvfs's multi-piece striped reads, ride
// the vectored form.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"pvfscache/internal/blockio"
)

// MaxMessageSize bounds a single framed message (64 MB + slack); it protects
// servers from corrupt or hostile length fields.
const MaxMessageSize = 64<<20 + 4096

// Type identifies a message kind on the wire.
type Type uint16

// Message types. The numbering groups mgr traffic in 0x01xx, iod data
// traffic in 0x02xx, flush traffic in 0x03xx, coherence in 0x04xx, and the
// global-cache extension in 0x05xx.
const (
	TCreate       Type = 0x0101
	TCreateResp   Type = 0x0102
	TOpen         Type = 0x0103
	TOpenResp     Type = 0x0104
	TStat         Type = 0x0105
	TStatResp     Type = 0x0106
	TUnlink       Type = 0x0107
	TSetSize      Type = 0x0108
	TList         Type = 0x0109
	TListResp     Type = 0x010a
	TStatus       Type = 0x010b
	TRead         Type = 0x0201
	TReadResp     Type = 0x0202
	TWrite        Type = 0x0203
	TWriteAck     Type = 0x0204
	TSyncWrite    Type = 0x0205
	TSyncWriteAck Type = 0x0206
	TFlush        Type = 0x0301
	TFlushAck     Type = 0x0302
	TInvalidate   Type = 0x0401
	TInvalidAck   Type = 0x0402
	TPeerGet      Type = 0x0501
	TPeerGetResp  Type = 0x0502
)

// String names the message type for logs.
func (t Type) String() string {
	switch t {
	case TCreate:
		return "Create"
	case TCreateResp:
		return "CreateResp"
	case TOpen:
		return "Open"
	case TOpenResp:
		return "OpenResp"
	case TStat:
		return "Stat"
	case TStatResp:
		return "StatResp"
	case TUnlink:
		return "Unlink"
	case TSetSize:
		return "SetSize"
	case TList:
		return "List"
	case TListResp:
		return "ListResp"
	case TStatus:
		return "Status"
	case TRead:
		return "Read"
	case TReadResp:
		return "ReadResp"
	case TWrite:
		return "Write"
	case TWriteAck:
		return "WriteAck"
	case TSyncWrite:
		return "SyncWrite"
	case TSyncWriteAck:
		return "SyncWriteAck"
	case TReadBlocks:
		return "ReadBlocks"
	case TReadBlocksResp:
		return "ReadBlocksResp"
	case TFlush:
		return "Flush"
	case TFlushAck:
		return "FlushAck"
	case TInvalidate:
		return "Invalidate"
	case TInvalidAck:
		return "InvalidAck"
	case TRegister:
		return "Register"
	case TRegisterAck:
		return "RegisterAck"
	case TPeerGet:
		return "PeerGet"
	case TPeerGetResp:
		return "PeerGetResp"
	case TPeerPut:
		return "PeerPut"
	case TPeerPutAck:
		return "PeerPutAck"
	case TViewGet:
		return "ViewGet"
	case TViewResp:
		return "ViewResp"
	case TJoinView:
		return "JoinView"
	case TLeaveView:
		return "LeaveView"
	default:
		return fmt.Sprintf("Type(0x%04x)", uint16(t))
	}
}

// Status is a protocol-level result code.
type Status uint16

// Status codes.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusExists
	StatusIOError
	StatusBadRequest
	StatusShortRead  // read extended past end of stored data
	StatusStaleEpoch // peer's membership epoch differs from the request's
	StatusDraining   // peer is draining and not admitting new work
	StatusOverload   // node is saturated; the request was shed and may be retried
)

// Err converts a non-OK status to an error; StatusOK yields nil.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusExists:
		return ErrExists
	case StatusIOError:
		return ErrIO
	case StatusBadRequest:
		return ErrBadRequest
	case StatusShortRead:
		return ErrShortRead
	case StatusStaleEpoch:
		return ErrStaleEpoch
	case StatusDraining:
		return ErrDraining
	case StatusOverload:
		return ErrOverload
	default:
		return fmt.Errorf("wire: unknown status %d", uint16(s))
	}
}

// Sentinel errors corresponding to status codes.
var (
	ErrNotFound   = errors.New("wire: not found")
	ErrExists     = errors.New("wire: already exists")
	ErrIO         = errors.New("wire: i/o error")
	ErrBadRequest = errors.New("wire: bad request")
	ErrShortRead  = errors.New("wire: short read")
	ErrStaleEpoch = errors.New("wire: stale membership epoch")
	ErrDraining   = errors.New("wire: peer draining")
	ErrOverload   = errors.New("wire: node overloaded, retry")
	ErrTooLarge   = errors.New("wire: message exceeds size limit")
)

// StatusFor maps an error back to a status code for the server side.
func StatusFor(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrNotFound):
		return StatusNotFound
	case errors.Is(err, ErrExists):
		return StatusExists
	case errors.Is(err, ErrBadRequest):
		return StatusBadRequest
	case errors.Is(err, ErrShortRead):
		return StatusShortRead
	case errors.Is(err, ErrStaleEpoch):
		return StatusStaleEpoch
	case errors.Is(err, ErrDraining):
		return StatusDraining
	case errors.Is(err, ErrOverload):
		return StatusOverload
	default:
		return StatusIOError
	}
}

// Message is any protocol message.
type Message interface {
	// WireType returns the message's type tag.
	WireType() Type
	// append encodes the payload (without the frame header) onto b.
	append(b []byte) []byte
	// decode parses the payload from r.
	decode(r *reader) error
}

// FileMeta carries a file's striping metadata and current size, exactly the
// attributes libpvfs fetches from mgr on open.
type FileMeta struct {
	Size   int64  // current file size in bytes
	Base   uint32 // index of the first iod holding strip 0
	PCount uint32 // number of iods the file is striped over
	SSize  uint32 // strip size in bytes
}

// FlushBlock is one dirty run carried by a flush message. Index names the
// first cache block of the run and Off is the offset of Data within that
// block: the flusher sends only the dirty span of a partially written
// block. Data may extend past the end of block Index into the following
// blocks — the flusher coalesces adjacent dirty blocks of one file into a
// single contiguous run, and the iod writes the whole run with one store
// call, recording every covered block in its coherence directory.
//
// Ownership: on the encode side Data is borrowed from the sender for the
// duration of the write (the flusher's snapshot buffers); on the decode
// side it aliases the connection's pooled frame buffer and must be
// consumed before the server handler returns (see rpc.Server).
type FlushBlock struct {
	Index int64
	Off   uint32
	Data  []byte
}

// Flush frame capacity, derived from the codec so a flusher's chunk
// budget cannot drift from what a frame can actually carry (a chunk
// framed over the limit would fail WriteTagged with ErrTooLarge and
// retry forever, since retrying never shrinks it):
const (
	// flushHeaderBytes is the fixed Flush encoding head:
	// Client (u32) + File (u64) + block count (u32).
	flushHeaderBytes = 4 + 8 + 4
	// FlushBlockOverhead is the per-run encoding overhead in a Flush
	// message: Index (i64) + Off (u32) + the Data length prefix (u32).
	FlushBlockOverhead = 8 + 4 + 4
	// MaxFlushPayload is the largest sum of
	// len(FlushBlock.Data) + FlushBlockOverhead that a single Flush frame
	// can carry: MaxMessageSize minus the frame's type word, the request
	// tag, and the Flush head. A flusher that keeps each chunk's
	// accounted bytes at or under this bound can never hit ErrTooLarge.
	MaxFlushPayload = MaxMessageSize - 2 - 8 - flushHeaderBytes
)

// --- mgr messages ---

// Create asks mgr to create a file with the given striping.
type Create struct {
	Name   string
	Base   uint32
	PCount uint32
	SSize  uint32
}

// CreateResp returns the new file's ID and metadata.
type CreateResp struct {
	Status Status
	File   blockio.FileID
	Meta   FileMeta
}

// Open resolves a name to a file ID and metadata.
type Open struct{ Name string }

// OpenResp carries the result of an Open.
type OpenResp struct {
	Status Status
	File   blockio.FileID
	Meta   FileMeta
}

// Stat fetches current metadata by file ID.
type Stat struct{ File blockio.FileID }

// StatResp carries the result of a Stat.
type StatResp struct {
	Status Status
	Meta   FileMeta
}

// Unlink removes a name from the namespace.
type Unlink struct{ Name string }

// SetSize grows the recorded file size to at least Size (writes extend
// files; mgr keeps the authoritative size).
type SetSize struct {
	File blockio.FileID
	Size int64
}

// List requests all file names.
type List struct{}

// ListResp carries the namespace contents.
type ListResp struct {
	Status Status
	Names  []string
}

// StatusMsg is a bare status reply used by Unlink and SetSize.
type StatusMsg struct{ Status Status }

// --- iod data-port messages ---

// Read requests [Offset, Offset+Length) of a file's data held by this iod.
// Offsets are in file coordinates; the iod maps them to its local strips.
// Client identifies the requesting node's cache for the coherence directory;
// Track is set when the requester caches the result.
type Read struct {
	Client uint32
	File   blockio.FileID
	Offset int64
	Length int64
	Track  bool
}

// ReadResp returns the requested bytes. Data may be shorter than requested
// when the read extends past written data; missing bytes read as zero on
// the client side (sparse semantics).
type ReadResp struct {
	Status Status
	Data   []byte
}

// Write stores Data at Offset.
type Write struct {
	Client uint32
	File   blockio.FileID
	Offset int64
	Data   []byte
}

// WriteAck acknowledges a Write.
type WriteAck struct{ Status Status }

// SyncWrite is the paper's coherent write: the iod persists the data and
// invalidates every other client cache holding copies of the touched blocks
// before acknowledging.
type SyncWrite struct {
	Client uint32
	File   blockio.FileID
	Offset int64
	Data   []byte
}

// SyncWriteAck acknowledges a SyncWrite after invalidations complete.
type SyncWriteAck struct {
	Status      Status
	Invalidated uint32 // number of remote caches invalidated
}

// --- flush-port messages ---

// Flush carries a batch of dirty runs of ONE file from a node's flusher
// to the iod-side flusher peer, which writes them with local file-system
// calls. A cache module may have several Flush frames in flight to one
// iod concurrently (the pipelined write-behind engine); the runs of the
// frames of one round are disjoint, so the iod may apply concurrent
// frames in any order. Delivery is at-least-once: a frame whose ack is
// lost is re-sent by the flusher after re-queuing its blocks, and the
// iod applies it again idempotently. (Re-sends are not ordered against
// the original: a lost-ack frame still executing at the iod can race a
// retry carrying newer bytes — see iod.flush for the residual race.)
type Flush struct {
	Client uint32
	File   blockio.FileID
	Blocks []FlushBlock
}

// FlushAck acknowledges a Flush batch.
type FlushAck struct{ Status Status }

// --- coherence messages ---

// Invalidate tells a client cache to drop its copies of the listed blocks.
// Drain marks a graceful-drain handoff rather than a sync-write conflict:
// the receiver keeps blocks it has dirtied (discarding them would lose
// acknowledged writes; they flush to the daemon's successor) and drops
// only clean copies.
type Invalidate struct {
	File    blockio.FileID
	Indices []int64
	Drain   bool
}

// InvalidAck acknowledges an Invalidate.
type InvalidAck struct{ Status Status }

// --- global-cache extension ---

// PeerGet asks a peer node's cache for a single block. Epoch is the
// membership epoch the requester routed with; a peer holding a different
// view answers StatusStaleEpoch so the requester refetches the view
// before retrying (epoch 0 on either side skips the check — static
// rings).
type PeerGet struct {
	File  blockio.FileID
	Index int64
	Epoch uint64
}

// PeerGetResp returns the block if the peer holds it.
type PeerGetResp struct {
	Status Status
	Data   []byte
}

// WireType implementations.
func (*Create) WireType() Type       { return TCreate }
func (*CreateResp) WireType() Type   { return TCreateResp }
func (*Open) WireType() Type         { return TOpen }
func (*OpenResp) WireType() Type     { return TOpenResp }
func (*Stat) WireType() Type         { return TStat }
func (*StatResp) WireType() Type     { return TStatResp }
func (*Unlink) WireType() Type       { return TUnlink }
func (*SetSize) WireType() Type      { return TSetSize }
func (*List) WireType() Type         { return TList }
func (*ListResp) WireType() Type     { return TListResp }
func (*StatusMsg) WireType() Type    { return TStatus }
func (*Read) WireType() Type         { return TRead }
func (*ReadResp) WireType() Type     { return TReadResp }
func (*Write) WireType() Type        { return TWrite }
func (*WriteAck) WireType() Type     { return TWriteAck }
func (*SyncWrite) WireType() Type    { return TSyncWrite }
func (*SyncWriteAck) WireType() Type { return TSyncWriteAck }
func (*Flush) WireType() Type        { return TFlush }
func (*FlushAck) WireType() Type     { return TFlushAck }
func (*Invalidate) WireType() Type   { return TInvalidate }
func (*InvalidAck) WireType() Type   { return TInvalidAck }
func (*PeerGet) WireType() Type      { return TPeerGet }
func (*PeerGetResp) WireType() Type  { return TPeerGetResp }

// New constructs an empty message of the given type, or nil for unknown
// types.
func New(t Type) Message {
	switch t {
	case TCreate:
		return &Create{}
	case TCreateResp:
		return &CreateResp{}
	case TOpen:
		return &Open{}
	case TOpenResp:
		return &OpenResp{}
	case TStat:
		return &Stat{}
	case TStatResp:
		return &StatResp{}
	case TUnlink:
		return &Unlink{}
	case TSetSize:
		return &SetSize{}
	case TList:
		return &List{}
	case TListResp:
		return &ListResp{}
	case TStatus:
		return &StatusMsg{}
	case TRead:
		return &Read{}
	case TReadResp:
		return &ReadResp{}
	case TWrite:
		return &Write{}
	case TWriteAck:
		return &WriteAck{}
	case TSyncWrite:
		return &SyncWrite{}
	case TSyncWriteAck:
		return &SyncWriteAck{}
	case TReadBlocks:
		return &ReadBlocks{}
	case TReadBlocksResp:
		return &ReadBlocksResp{}
	case TFlush:
		return &Flush{}
	case TFlushAck:
		return &FlushAck{}
	case TInvalidate:
		return &Invalidate{}
	case TInvalidAck:
		return &InvalidAck{}
	case TRegister:
		return &Register{}
	case TRegisterAck:
		return &RegisterAck{}
	case TPeerGet:
		return &PeerGet{}
	case TPeerGetResp:
		return &PeerGetResp{}
	case TPeerPut:
		return &PeerPut{}
	case TPeerPutAck:
		return &PeerPutAck{}
	case TViewGet:
		return &ViewGet{}
	case TViewResp:
		return &ViewResp{}
	case TJoinView:
		return &JoinView{}
	case TLeaveView:
		return &LeaveView{}
	default:
		return nil
	}
}

// tagBit marks a frame whose header carries a u64 request tag. It sits in
// the length word, far above MaxMessageSize, so untagged readers reject
// tagged frames instead of misparsing them.
const tagBit = 1 << 31

// framePool recycles encode buffers; payloadPool recycles decode buffers.
// Oversized buffers are not returned so a rare huge message cannot pin
// memory.
var (
	framePool   = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}
	payloadPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}
)

// pooledBufCap bounds the capacity of buffers kept in the pools (1 MB).
const pooledBufCap = 1 << 20

func putFrameBuf(b []byte) {
	if cap(b) <= pooledBufCap {
		framePool.Put(b[:0]) //nolint:staticcheck // slice header allocation is amortized
	}
}

func putPayloadBuf(b []byte) {
	if cap(b) <= pooledBufCap {
		payloadPool.Put(b[:0]) //nolint:staticcheck
	}
}

// poisonPayloads, when set, overwrites every payload buffer released via
// ReleasePayload with PoisonByte before recycling it. Tests enable it so
// an alias that outlives its lease reads an obvious poison pattern (and
// trips the race detector on concurrent reuse) instead of silently reading
// stale-but-plausible bytes.
var poisonPayloads atomic.Bool

// PoisonByte is the fill pattern SetPoisonReleased stamps over released
// payload buffers.
const PoisonByte = 0xDB

// SetPoisonReleased toggles poison-on-release for payload buffers (debug
// mode for the zero-copy lease protocol; see rpc.Lease).
func SetPoisonReleased(on bool) { poisonPayloads.Store(on) }

// ReleasePayload recycles a payload buffer obtained from ReadFrameAliased.
// It must be called exactly once, after every alias into the buffer is
// dead. Nil is a no-op.
func ReleasePayload(b []byte) {
	if b == nil {
		return
	}
	if poisonPayloads.Load() {
		for i := range b {
			b[i] = PoisonByte
		}
	}
	putPayloadBuf(b)
}

// appendFrame encodes a frame (tagged when tagged is true) onto b.
func appendFrame(b []byte, tag uint64, tagged bool, m Message) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length placeholder
	b = apU16(b, uint16(m.WireType()))
	if tagged {
		b = apU64(b, tag)
	}
	b = m.append(b)
	size := len(b) - start - 4
	if size > MaxMessageSize {
		return b[:start], ErrTooLarge
	}
	word := uint32(size)
	if tagged {
		word |= tagBit
	}
	binary.BigEndian.PutUint32(b[start:start+4], word)
	return b, nil
}

// dataTail is implemented by messages whose encoding is a fixed head
// followed by one bulk payload as the final field (ReadResp,
// ReadBlocksResp, Write, SyncWrite, PeerGet/PeerPut responses). writeFrame
// writes the tail straight from the message's own buffer — a writev on
// TCP, two pipe writes in memory — instead of copying it into the frame
// buffer first.
type dataTail interface {
	Message
	// appendHead encodes the payload up to and including the tail's length
	// prefix.
	appendHead(b []byte) []byte
	// tail returns the bulk payload written after the head.
	tail() []byte
}

// minVecTail is the smallest payload tail worth a scatter-gather write;
// below it, one copy into the frame buffer is cheaper than a second write
// on the transport.
const minVecTail = 1 << 10

func writeFrame(w io.Writer, tag uint64, tagged bool, m Message) error {
	if dt, ok := m.(dataTail); ok {
		if t := dt.tail(); len(t) >= minVecTail {
			return writeFrameVec(w, tag, tagged, dt, t)
		}
	}
	buf := framePool.Get().([]byte)
	frame, err := appendFrame(buf, tag, tagged, m)
	if err != nil {
		putFrameBuf(buf)
		return err
	}
	_, err = w.Write(frame)
	putFrameBuf(frame)
	return err
}

// writeFrameVec writes header+head from a small pooled buffer and the bulk
// tail directly from the message's buffer, so a response's payload is
// never copied into a frame. Callers serialize writes per connection
// (rpc's per-connection write locks), so the two segments cannot
// interleave with another frame.
func writeFrameVec(w io.Writer, tag uint64, tagged bool, m dataTail, tail []byte) error {
	buf := framePool.Get().([]byte)
	b := append(buf, 0, 0, 0, 0) // length placeholder
	b = apU16(b, uint16(m.WireType()))
	if tagged {
		b = apU64(b, tag)
	}
	b = m.appendHead(b)
	size := len(b) - 4 + len(tail)
	if size > MaxMessageSize {
		putFrameBuf(b)
		return ErrTooLarge
	}
	word := uint32(size)
	if tagged {
		word |= tagBit
	}
	binary.BigEndian.PutUint32(b[0:4], word)
	bufs := net.Buffers{b, tail}
	_, err := bufs.WriteTo(w)
	putFrameBuf(b)
	return err
}

// WriteMessage frames and writes m to w in the untagged (legacy) format.
func WriteMessage(w io.Writer, m Message) error {
	return writeFrame(w, 0, false, m)
}

// WriteTagged frames and writes m to w with a request tag; the peer echoes
// the tag on the response so replies can complete out of order.
func WriteTagged(w io.Writer, tag uint64, m Message) error {
	return writeFrame(w, tag, true, m)
}

// ReadMessage reads one untagged framed message from r. A tagged frame
// fails with ErrTooLarge (the tag bit lies above the size limit).
func ReadMessage(r io.Reader) (Message, error) {
	_, tagged, m, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	if tagged {
		return nil, ErrTooLarge
	}
	return m, nil
}

// ReadFrame reads one framed message from r, accepting both the untagged
// and the tagged format, and reports which one arrived. Every
// variable-length field of the returned message is an independent copy.
func ReadFrame(r io.Reader) (tag uint64, tagged bool, m Message, err error) {
	tag, tagged, m, _, err = readFrame(r, false)
	return tag, tagged, m, err
}

// ReadFrameAliased is ReadFrame in zero-copy mode: bulk payload fields of
// the decoded message (ReadResp.Data, Write.Data, flush block data, peer
// block data, ...) alias the returned payload buffer instead of being
// copied out of it. The caller owns payload and must pass it to
// ReleasePayload exactly once, after every alias is dead; payload is nil
// when the message kept no alias (the buffer was recycled internally).
func ReadFrameAliased(r io.Reader) (tag uint64, tagged bool, m Message, payload []byte, err error) {
	return readFrame(r, true)
}

func readFrame(r io.Reader, alias bool) (tag uint64, tagged bool, m Message, retained []byte, err error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, false, nil, nil, err
	}
	word := binary.BigEndian.Uint32(hdr[0:4])
	tagged = word&tagBit != 0
	size := word &^ tagBit
	min := uint32(2)
	if tagged {
		min = 2 + 8
	}
	if size < min || size > MaxMessageSize {
		return 0, false, nil, nil, ErrTooLarge
	}
	t := Type(binary.BigEndian.Uint16(hdr[4:6]))
	if tagged {
		var tb [8]byte
		if _, err := io.ReadFull(r, tb[:]); err != nil {
			return 0, false, nil, nil, err
		}
		tag = binary.BigEndian.Uint64(tb[:])
	}
	plen := int(size - min)
	payload := payloadPool.Get().([]byte)
	if cap(payload) < plen {
		payload = make([]byte, plen)
	}
	payload = payload[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		putPayloadBuf(payload)
		return 0, false, nil, nil, err
	}
	m = New(t)
	if m == nil {
		putPayloadBuf(payload)
		return 0, false, nil, nil, fmt.Errorf("wire: unknown message type 0x%04x", uint16(t))
	}
	rd := &reader{buf: payload, alias: alias}
	derr := m.decode(rd)
	trailing := len(rd.buf) - rd.pos
	if derr != nil || trailing != 0 || !rd.aliased {
		// Nothing in the message aliases the buffer (or the message is
		// rejected): recycle it now.
		putPayloadBuf(payload)
		payload = nil
	}
	if derr != nil {
		return 0, false, nil, nil, fmt.Errorf("wire: decoding %v: %w", t, derr)
	}
	if trailing != 0 {
		return 0, false, nil, nil, fmt.Errorf("wire: %d trailing bytes after %v", trailing, t)
	}
	return tag, tagged, m, payload, nil
}

// Marshal returns the framed encoding of m (header plus payload). It is
// used by the simulator to size messages without a writer, so unlike
// writeFrame it never drops an oversized message — the simulator must
// still charge transfer time for it.
func Marshal(m Message) []byte {
	payload := m.append(nil)
	frame := make([]byte, 6, 6+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)+2))
	binary.BigEndian.PutUint16(frame[4:6], uint16(m.WireType()))
	return append(frame, payload...)
}

// EncodedSize returns the framed size of m in bytes. The simulator uses it
// to charge network transfer time for a message without serializing data.
func EncodedSize(m Message) int64 { return int64(len(Marshal(m))) }
