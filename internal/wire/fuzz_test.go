package wire

// Native Go fuzz targets for every count-prefixed decoder in the package,
// seeded with valid encodings of each message type. Three properties are
// enforced on every input the fuzzer finds:
//
//   - no panic: hostile frames and payloads must fail with an error, never
//     crash the daemon that read them off a socket;
//   - no over-allocation: a count prefix can only pre-allocate what the
//     payload it arrived in could possibly hold (the reader.count guard),
//     so a 4-byte hostile count cannot pin gigabytes;
//   - canonical round trip: anything that decodes re-encodes to a frame
//     that decodes to the same message and re-encodes identically.
//
// CI runs each target for a ~30 s smoke (see .github/workflows/ci.yml);
// the committed corpora under testdata/fuzz keep the interesting inputs
// from past runs as regression seeds.

import (
	"bytes"
	"reflect"
	"testing"

	"pvfscache/internal/blockio"
)

// fuzzSampleMessages returns one populated value of every wire message,
// used to seed the corpus with valid encodings.
func fuzzSampleMessages() []Message {
	return []Message{
		&Create{Name: "f.dat", Base: 1, PCount: 4, SSize: 64 << 10},
		&CreateResp{Status: StatusOK, File: 7, Meta: FileMeta{Size: 1 << 20, Base: 1, PCount: 4, SSize: 64 << 10}},
		&Open{Name: "f.dat"},
		&OpenResp{Status: StatusNotFound, File: 9, Meta: FileMeta{Size: 3}},
		&Stat{File: 7},
		&StatResp{Status: StatusOK, Meta: FileMeta{Size: 42, PCount: 2, SSize: 4096}},
		&Unlink{Name: "gone"},
		&SetSize{File: 7, Size: 1 << 30},
		&List{},
		&ListResp{Status: StatusOK, Names: []string{"a", "bb", ""}},
		&StatusMsg{Status: StatusIOError},
		&Read{Client: 3, File: 7, Offset: 8192, Length: 4096, Track: true},
		&ReadResp{Status: StatusOK, Data: []byte{1, 2, 3}},
		&Write{Client: 3, File: 7, Offset: 0, Data: []byte("hello")},
		&WriteAck{Status: StatusOK},
		&SyncWrite{Client: 3, File: 7, Offset: 12, Data: []byte("sync")},
		&SyncWriteAck{Status: StatusOK, Invalidated: 2},
		&ReadBlocks{Client: 3, File: 7, Track: true, Exts: []ReadExtent{{0, 4096}, {16384, 8192}}},
		&ReadBlocksResp{Status: StatusOK, Lens: []uint32{2, 3}, Data: []byte{1, 2, 3, 4, 5}},
		&Flush{Client: 3, File: 7, Blocks: []FlushBlock{{Index: 1, Off: 100, Data: []byte("dirty")}}},
		&FlushAck{Status: StatusOK},
		&Invalidate{File: 7, Indices: []int64{0, 5, 9}},
		&InvalidAck{Status: StatusOK},
		&Register{Client: 3, Addr: "node0:9000"},
		&RegisterAck{Status: StatusOK},
		&PeerGet{File: 7, Index: 5},
		&PeerGetResp{Status: StatusOK, Data: []byte{9, 9}},
		&PeerPut{File: 7, Index: 5, Owner: 1, Data: []byte{8, 8}},
		&PeerPutAck{Status: StatusOK},
	}
}

// encodeFrame frames m exactly as the transport writers do.
func encodeFrame(tag uint64, tagged bool, m Message) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	if tagged {
		err = WriteTagged(&buf, tag, m)
	} else {
		err = WriteMessage(&buf, m)
	}
	return buf.Bytes(), err
}

// FuzzDecode feeds arbitrary bytes through the full frame reader — length
// word, tag bit, type dispatch and every message decoder behind it. Any
// frame that decodes must round-trip canonically.
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSampleMessages() {
		if enc, err := encodeFrame(0, false, m); err == nil {
			f.Add(enc)
		}
		if enc, err := encodeFrame(0xDEADBEEF, true, m); err == nil {
			f.Add(enc)
		}
	}
	// Hostile shapes: truncated header, oversize length, tagged bit with a
	// short body, unknown type, hostile element count.
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x0b})
	f.Add([]byte{0x80, 0x00, 0x00, 0x02, 0x01, 0x0b})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0x7f, 0x7f})
	f.Add([]byte{0x00, 0x00, 0x00, 0x0e, 0x04, 0x01, // Invalidate
		0, 0, 0, 0, 0, 0, 0, 7, 0xFF, 0xFF, 0xFF, 0xFF}) // count 2^32-1
	f.Fuzz(func(t *testing.T, data []byte) {
		tag, tagged, m, err := ReadFrame(bytes.NewReader(data))
		// The zero-copy decoder must accept and reject exactly the same
		// frames as the copying one, and decode to the same message.
		ztag, ztagged, zm, payload, zerr := ReadFrameAliased(bytes.NewReader(data))
		if (err == nil) != (zerr == nil) {
			t.Fatalf("decode modes disagree: copying err %v, aliased err %v", err, zerr)
		}
		if err != nil {
			return // rejected cleanly; not panicking is the property
		}
		if ztag != tag || ztagged != tagged || zm.WireType() != m.WireType() {
			t.Fatalf("aliased decode header diverged: %d/%v/%v vs %d/%v/%v",
				tag, tagged, m.WireType(), ztag, ztagged, zm.WireType())
		}
		zenc, err := encodeFrame(ztag, ztagged, zm)
		if err != nil {
			t.Fatalf("aliased-decoded %v does not re-encode: %v", zm.WireType(), err)
		}
		ReleasePayload(payload)
		enc1, err := encodeFrame(tag, tagged, m)
		if err != nil {
			t.Fatalf("decoded %v does not re-encode: %v", m.WireType(), err)
		}
		if !bytes.Equal(enc1, zenc) {
			t.Fatalf("%v: aliased decode diverged from copying decode", m.WireType())
		}
		tag2, tagged2, m2, err := ReadFrame(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("re-encoded %v does not decode: %v", m.WireType(), err)
		}
		if tag2 != tag || tagged2 != tagged || m2.WireType() != m.WireType() {
			t.Fatalf("frame header changed across round trip: tag %d/%v -> %d/%v type %v -> %v",
				tag, tagged, tag2, tagged2, m.WireType(), m2.WireType())
		}
		enc2, err := encodeFrame(tag2, tagged2, m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%v encoding not canonical", m.WireType())
		}
	})
}

// FuzzVectorDecode drives the vectored-read decoders (the newest
// count-prefixed payloads) directly on raw payload bytes, checking the
// count guard's allocation bound and the Lens-tile-Data invariant that the
// cache module's fill path depends on.
func FuzzVectorDecode(f *testing.F) {
	rb := &ReadBlocks{Client: 1, File: 2, Track: true, Exts: []ReadExtent{{0, 4096}, {8192, 4096}}}
	f.Add(rb.append(nil))
	resp := &ReadBlocksResp{Status: StatusOK, Lens: []uint32{1, 4}, Data: []byte{1, 2, 3, 4, 5}}
	f.Add(resp.append(nil))
	f.Add([]byte{0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}) // hostile counts
	f.Fuzz(func(t *testing.T, payload []byte) {
		var req ReadBlocks
		if err := req.decode(&reader{buf: payload}); err == nil {
			if len(req.Exts)*16 > len(payload) {
				t.Fatalf("ReadBlocks decoded %d extents from %d bytes (over-allocation)",
					len(req.Exts), len(payload))
			}
			enc := req.append(nil)
			var again ReadBlocks
			if err := again.decode(&reader{buf: enc}); err != nil {
				t.Fatalf("ReadBlocks re-decode: %v", err)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatal("ReadBlocks round trip diverged")
			}
		}
		var rsp ReadBlocksResp
		if err := rsp.decode(&reader{buf: payload}); err == nil {
			if len(rsp.Lens)*4 > len(payload) {
				t.Fatalf("ReadBlocksResp decoded %d lens from %d bytes (over-allocation)",
					len(rsp.Lens), len(payload))
			}
			var sum int64
			for _, l := range rsp.Lens {
				sum += int64(l)
			}
			if sum != int64(len(rsp.Data)) {
				t.Fatalf("decode accepted Lens summing %d against %d data bytes", sum, len(rsp.Data))
			}
			enc := rsp.append(nil)
			var again ReadBlocksResp
			if err := again.decode(&reader{buf: enc}); err != nil {
				t.Fatalf("ReadBlocksResp re-decode: %v", err)
			}
			if !reflect.DeepEqual(rsp, again) {
				t.Fatal("ReadBlocksResp round trip diverged")
			}
		}
	})
}

// FuzzFrameRoundTrip builds messages from structured fuzz inputs, frames
// them (tagged and untagged), and requires the decoder to be an exact
// inverse — field-for-field via the canonical re-encoding.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(7), int64(4096), int64(8192), []byte("payload"), uint64(1), true)
	f.Add(uint8(1), uint64(1), int64(0), int64(0), []byte{}, uint64(0), false)
	f.Add(uint8(2), uint64(9), int64(-1), int64(1<<40), []byte("x"), uint64(1<<63), true)
	f.Add(uint8(3), uint64(0), int64(100), int64(200), []byte("abcde"), uint64(3), false)
	f.Add(uint8(4), uint64(5), int64(5), int64(6), []byte("names"), uint64(0), true)
	f.Fuzz(func(t *testing.T, kind uint8, file uint64, a, b int64, blob []byte, tag uint64, tagged bool) {
		var m Message
		switch kind % 6 {
		case 0:
			m = &Read{Client: uint32(file), File: blockio.FileID(file), Offset: a, Length: b, Track: tagged}
		case 1:
			m = &Write{Client: 1, File: blockio.FileID(file), Offset: a, Data: blob}
		case 2:
			m = &ReadBlocks{Client: 2, File: blockio.FileID(file), Track: !tagged,
				Exts: []ReadExtent{{Offset: a, Length: b}, {Offset: b, Length: a}}}
		case 3:
			m = &Flush{Client: 3, File: blockio.FileID(file),
				Blocks: []FlushBlock{{Index: a, Off: uint32(b), Data: blob}}}
		case 4:
			m = &Invalidate{File: blockio.FileID(file), Indices: []int64{a, b, a ^ b}}
		case 5:
			m = &PeerPut{File: blockio.FileID(file), Index: a, Owner: uint32(b), Data: blob}
		}
		enc, err := encodeFrame(tag, tagged, m)
		if err != nil {
			return // e.g. a blob pushing the frame past MaxMessageSize
		}
		tag2, tagged2, got, err := ReadFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("valid %v frame rejected: %v", m.WireType(), err)
		}
		if tagged2 != tagged || (tagged && tag2 != tag) {
			t.Fatalf("tag lost: %d/%v -> %d/%v", tag, tagged, tag2, tagged2)
		}
		if got.WireType() != m.WireType() {
			t.Fatalf("type changed: %v -> %v", m.WireType(), got.WireType())
		}
		// Compare via re-encoding: nil and empty slices frame identically,
		// so this is exact field equality without reflect's nil-vs-empty
		// false negatives.
		reEnc, err := encodeFrame(tag, tagged, got)
		if err != nil {
			t.Fatalf("decoded %v does not re-encode: %v", got.WireType(), err)
		}
		if !bytes.Equal(enc, reEnc) {
			t.Fatalf("%v round trip changed the encoding", m.WireType())
		}
	})
}
