package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestReadBlocksRoundTrip(t *testing.T) {
	want := &ReadBlocks{
		Client: 7,
		File:   11,
		Track:  true,
		Exts: []ReadExtent{
			{Offset: 0, Length: 4096},
			{Offset: 12288, Length: 8192},
			{Offset: 1 << 30, Length: 4096},
		},
	}
	got := roundTrip(t, want).(*ReadBlocks)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}

	empty := roundTrip(t, &ReadBlocks{Client: 1, File: 2}).(*ReadBlocks)
	if len(empty.Exts) != 0 {
		t.Fatalf("empty extents decoded as %v", empty.Exts)
	}
}

func TestReadBlocksRespRoundTrip(t *testing.T) {
	want := &ReadBlocksResp{
		Status: StatusOK,
		Lens:   []uint32{3, 0, 5},
		Data:   []byte("abcdefgh"), // 3 + 0 + 5
	}
	got := roundTrip(t, want).(*ReadBlocksResp)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}

	empty := roundTrip(t, &ReadBlocksResp{Status: StatusNotFound}).(*ReadBlocksResp)
	if len(empty.Lens) != 0 || len(empty.Data) != 0 {
		t.Fatalf("empty resp decoded as %+v", empty)
	}
}

// frameFor wraps a raw payload in an untagged frame of the given type.
func frameFor(typ Type, payload []byte) []byte {
	frame := make([]byte, 6, 6+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)+2))
	binary.BigEndian.PutUint16(frame[4:6], uint16(typ))
	return append(frame, payload...)
}

// TestReadBlocksHostileCount declares an extent count far beyond what the
// payload holds: decode must reject it before allocating anything.
func TestReadBlocksHostileCount(t *testing.T) {
	payload := (&ReadBlocks{Client: 1, File: 2}).append(nil)
	// The extent count is the final u32 of an extent-less encoding.
	binary.BigEndian.PutUint32(payload[len(payload)-4:], 0xffffffff)
	if _, err := ReadMessage(bytes.NewReader(frameFor(TReadBlocks, payload))); err == nil {
		t.Fatal("hostile extent count accepted")
	}
}

// TestReadBlocksRespHostileCount does the same for the response's length
// vector.
func TestReadBlocksRespHostileCount(t *testing.T) {
	payload := apU16(nil, uint16(StatusOK))
	payload = apU32(payload, 0xffffffff) // Lens count with no bytes behind it
	if _, err := ReadMessage(bytes.NewReader(frameFor(TReadBlocksResp, payload))); err == nil {
		t.Fatal("hostile length count accepted")
	}
}

// TestReadBlocksRespLensMismatch rejects responses whose per-extent
// lengths do not tile Data exactly — otherwise Lens could address bytes
// Data does not hold.
func TestReadBlocksRespLensMismatch(t *testing.T) {
	for _, lens := range [][]uint32{
		{9},          // claims more than Data holds
		{1},          // claims less than Data holds
		{0xffffffff}, // u32 overflow bait
	} {
		m := &ReadBlocksResp{Status: StatusOK, Lens: lens, Data: []byte("abc")}
		payload := m.append(nil)
		if _, err := ReadMessage(bytes.NewReader(frameFor(TReadBlocksResp, payload))); err == nil {
			t.Fatalf("lens %v accepted for 3-byte data", lens)
		}
	}
}

func TestVectorTypeStrings(t *testing.T) {
	if TReadBlocks.String() != "ReadBlocks" || TReadBlocksResp.String() != "ReadBlocksResp" {
		t.Fatalf("type strings: %q %q", TReadBlocks.String(), TReadBlocksResp.String())
	}
}
