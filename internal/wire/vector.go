package wire

import "pvfscache/internal/blockio"

// Vectored read message types (iod data-port group).
const (
	TReadBlocks     Type = 0x0207
	TReadBlocksResp Type = 0x0208
)

// ReadExtent is one contiguous byte range of a ReadBlocks request, in file
// coordinates.
type ReadExtent struct {
	Offset int64
	Length int64
}

// ReadBlocks is the vectored read: it asks one iod for several disjoint
// extents of a file in a single round trip. The cache module uses it to
// fetch all the missing blocks of a request (and its readahead window) at
// once instead of issuing one Read per run of consecutive blocks, and
// libpvfs uses it when several striping pieces of one operation land on
// the same iod. Client and Track have Read's semantics, applied to every
// extent.
type ReadBlocks struct {
	Client uint32
	File   blockio.FileID
	Track  bool
	Exts   []ReadExtent
}

// ReadBlocksResp answers a ReadBlocks. The extents' bytes are concatenated
// in request order in Data, with no padding: Lens[i] is the byte count
// actually served for extent i, which may be short when the extent extends
// past stored data (the missing tail reads as zero on the client side,
// PVFS's sparse semantics). A single backing buffer lets the server
// recycle it through the rpc AfterWrite hook, like ReadResp.
type ReadBlocksResp struct {
	Status Status
	Lens   []uint32
	Data   []byte
}

// ValidateExtents checks a vectored read's extents: every offset and
// length non-negative, and each length plus the running total within
// MaxMessageSize/2 so the response can always be framed. It returns the
// byte total and whether the extents are acceptable. The iod and the
// caching transport share it so the bound is defined once, next to
// MaxMessageSize.
func ValidateExtents(exts []ReadExtent) (total int64, ok bool) {
	for _, e := range exts {
		if e.Offset < 0 || e.Length < 0 || e.Length > MaxMessageSize/2 {
			return 0, false
		}
		total += e.Length
		if total > MaxMessageSize/2 {
			return 0, false
		}
	}
	return total, true
}

// WireType implementations.
func (*ReadBlocks) WireType() Type     { return TReadBlocks }
func (*ReadBlocksResp) WireType() Type { return TReadBlocksResp }

func (m *ReadBlocks) append(b []byte) []byte {
	b = apU32(b, m.Client)
	b = apU64(b, uint64(m.File))
	b = apBool(b, m.Track)
	b = apU32(b, uint32(len(m.Exts)))
	for _, e := range m.Exts {
		b = apI64(b, e.Offset)
		b = apI64(b, e.Length)
	}
	return b
}

func (m *ReadBlocks) decode(r *reader) error {
	var err error
	if m.Client, err = r.u32(); err != nil {
		return err
	}
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Track, err = r.bool(); err != nil {
		return err
	}
	n, err := r.count(16) // offset + length per extent
	if err != nil {
		return err
	}
	m.Exts = make([]ReadExtent, 0, n)
	for i := 0; i < n; i++ {
		var e ReadExtent
		if e.Offset, err = r.i64(); err != nil {
			return err
		}
		if e.Length, err = r.i64(); err != nil {
			return err
		}
		m.Exts = append(m.Exts, e)
	}
	return nil
}

func (m *ReadBlocksResp) appendHead(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	b = apU32(b, uint32(len(m.Lens)))
	for _, n := range m.Lens {
		b = apU32(b, n)
	}
	return apU32(b, uint32(len(m.Data)))
}

func (m *ReadBlocksResp) tail() []byte { return m.Data }

func (m *ReadBlocksResp) append(b []byte) []byte { return append(m.appendHead(b), m.Data...) }

func (m *ReadBlocksResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	n, err := r.count(4)
	if err != nil {
		return err
	}
	m.Lens = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		l, err := r.u32()
		if err != nil {
			return err
		}
		m.Lens = append(m.Lens, l)
	}
	if m.Data, err = r.bytes(); err != nil {
		return err
	}
	// The lengths must tile Data exactly; a mismatch means a corrupt or
	// hostile peer and would otherwise let Lens address bytes Data does
	// not hold.
	var sum int64
	for _, l := range m.Lens {
		sum += int64(l)
	}
	if sum != int64(len(m.Data)) {
		return errTruncated
	}
	return nil
}
