package wire

import (
	"bytes"
	"testing"
)

// TestMaxFlushPayloadMatchesCodec pins the derived Flush frame budget to
// the codec: a Flush whose accounted bytes (len(Data)+FlushBlockOverhead
// per run) exactly reach MaxFlushPayload must frame successfully as a
// tagged message, and one byte more must fail with ErrTooLarge. If the
// encoding of Flush ever grows a field without the constants moving with
// it, this test fails instead of a flusher looping on ErrTooLarge
// retries in production.
func TestMaxFlushPayloadMatchesCodec(t *testing.T) {
	// Two runs, splitting the budget, so the per-run overhead is
	// exercised more than once.
	budget := MaxFlushPayload - 2*FlushBlockOverhead
	half := budget / 2
	mk := func(extra int) *Flush {
		return &Flush{
			Client: 1,
			File:   2,
			Blocks: []FlushBlock{
				{Index: 0, Off: 128, Data: make([]byte, half)},
				{Index: 9, Off: 0, Data: make([]byte, budget-half+extra)},
			},
		}
	}

	var buf bytes.Buffer
	if err := WriteTagged(&buf, 7, mk(0)); err != nil {
		t.Fatalf("Flush at exactly MaxFlushPayload failed to frame: %v", err)
	}
	var over discard
	if err := WriteTagged(&over, 7, mk(1)); err != ErrTooLarge {
		t.Fatalf("Flush one byte over MaxFlushPayload: err = %v, want ErrTooLarge", err)
	}
}

// discard is an io.Writer that ignores everything (the oversize frame
// should be rejected before any write, but scatter-gather writes may emit
// the head first on other paths).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestFlushRunRoundTrip pins the multi-block run shape: Data longer than
// one cache block survives encode/decode unchanged (the codec has no
// block-size notion; the run length is the iod's to interpret).
func TestFlushRunRoundTrip(t *testing.T) {
	run := make([]byte, 3*4096+77) // spans four 4 KB blocks
	for i := range run {
		run[i] = byte(i * 31)
	}
	in := &Flush{Client: 3, File: 11, Blocks: []FlushBlock{{Index: 5, Off: 4019, Data: run}}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	_, _, msg, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := msg.(*Flush)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if out.Client != in.Client || out.File != in.File || len(out.Blocks) != 1 {
		t.Fatalf("header mismatch: %+v", out)
	}
	got := out.Blocks[0]
	if got.Index != 5 || got.Off != 4019 || !bytes.Equal(got.Data, run) {
		t.Fatalf("run mismatch: index=%d off=%d len=%d", got.Index, got.Off, len(got.Data))
	}
}
