package wire

// Membership messages (0x06xx): the mgr-coordinated view protocol. A
// global-cache node Joins with its peer-service address when it boots,
// Leaves when it drains, and any node can fetch the current view. The
// mgr answers every one of them with a ViewResp carrying the full
// epoch-stamped member list, so a join doubles as the joiner's first
// view fetch.
const (
	TViewGet   Type = 0x0601
	TViewResp  Type = 0x0602
	TJoinView  Type = 0x0603
	TLeaveView Type = 0x0604
)

// ViewGet asks the mgr for the current membership view.
type ViewGet struct{}

// ViewResp carries an epoch-stamped membership view: parallel ID and
// address lists, sorted by ID.
type ViewResp struct {
	Status Status
	Epoch  uint64
	IDs    []uint32
	Addrs  []string
}

// JoinView registers (or re-addresses) a global-cache member.
type JoinView struct {
	ID   uint32
	Addr string
}

// LeaveView deregisters a member that is draining out of the ring.
type LeaveView struct{ ID uint32 }

// WireType implementations.
func (*ViewGet) WireType() Type   { return TViewGet }
func (*ViewResp) WireType() Type  { return TViewResp }
func (*JoinView) WireType() Type  { return TJoinView }
func (*LeaveView) WireType() Type { return TLeaveView }

func (m *ViewGet) append(b []byte) []byte { return b }

func (m *ViewGet) decode(r *reader) error { return nil }

func (m *ViewResp) append(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	b = apU64(b, m.Epoch)
	b = apU32(b, uint32(len(m.IDs)))
	for _, id := range m.IDs {
		b = apU32(b, id)
	}
	b = apU32(b, uint32(len(m.Addrs)))
	for _, a := range m.Addrs {
		b = apStr(b, a)
	}
	return b
}

func (m *ViewResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	n, err := r.count(4)
	if err != nil {
		return err
	}
	m.IDs = make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		id, err := r.u32()
		if err != nil {
			return err
		}
		m.IDs = append(m.IDs, id)
	}
	an, err := r.count(4)
	if err != nil {
		return err
	}
	if an != n {
		return errTruncated
	}
	m.Addrs = make([]string, 0, an)
	for i := 0; i < an; i++ {
		a, err := r.str()
		if err != nil {
			return err
		}
		m.Addrs = append(m.Addrs, a)
	}
	return nil
}

func (m *JoinView) append(b []byte) []byte {
	b = apU32(b, m.ID)
	return apStr(b, m.Addr)
}

func (m *JoinView) decode(r *reader) error {
	var err error
	if m.ID, err = r.u32(); err != nil {
		return err
	}
	m.Addr, err = r.str()
	return err
}

func (m *LeaveView) append(b []byte) []byte { return apU32(b, m.ID) }

func (m *LeaveView) decode(r *reader) error {
	var err error
	m.ID, err = r.u32()
	return err
}
