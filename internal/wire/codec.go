package wire

import (
	"encoding/binary"
	"errors"

	"pvfscache/internal/blockio"
)

// errTruncated reports a payload shorter than its declared fields.
var errTruncated = errors.New("truncated payload")

// reader is a cursor over a message payload. In alias mode (zero-copy
// decode, see ReadFrameAliased) bulk byte fields are returned as subslices
// of buf instead of copies, and aliased records whether any such subslice
// was actually handed out — if none was, the payload buffer can be
// recycled immediately.
type reader struct {
	buf     []byte
	pos     int
	alias   bool
	aliased bool
}

func (r *reader) u8() (byte, error) {
	if r.pos+1 > len(r.buf) {
		return 0, errTruncated
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.pos+2 > len(r.buf) {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

// count reads a u32 element count and validates it against the bytes left
// in the payload: each element occupies at least minElemSize encoded bytes,
// so a count the payload cannot possibly hold is rejected before any
// allocation. This keeps a hostile 4-byte count from pre-allocating
// gigabytes.
func (r *reader) count(minElemSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(minElemSize) > int64(len(r.buf)-r.pos) {
		return 0, errTruncated
	}
	return int(n), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if r.pos+int(n) > len(r.buf) {
		return nil, errTruncated
	}
	if r.alias && n > 0 {
		// Zero-copy: alias the payload buffer. Full slice expression so an
		// append by the consumer cannot scribble over the next field.
		v := r.buf[r.pos : r.pos+int(n) : r.pos+int(n)]
		r.pos += int(n)
		r.aliased = true
		return v, nil
	}
	v := make([]byte, n)
	copy(v, r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return v, nil
}

// str reads a length-prefixed string. The string conversion always copies,
// so it never aliases the payload buffer even in alias mode.
func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.buf) {
		return "", errTruncated
	}
	v := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return v, nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	return v != 0, err
}

// append helpers.
func apU8(b []byte, v byte) []byte    { return append(b, v) }
func apU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func apU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func apU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func apI64(b []byte, v int64) []byte  { return apU64(b, uint64(v)) }
func apBytes(b, v []byte) []byte      { return append(apU32(b, uint32(len(v))), v...) }
func apStr(b []byte, v string) []byte { return append(apU32(b, uint32(len(v))), v...) }
func apBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func apMeta(b []byte, m FileMeta) []byte {
	b = apI64(b, m.Size)
	b = apU32(b, m.Base)
	b = apU32(b, m.PCount)
	return apU32(b, m.SSize)
}

func (r *reader) meta() (FileMeta, error) {
	var m FileMeta
	var err error
	if m.Size, err = r.i64(); err != nil {
		return m, err
	}
	if m.Base, err = r.u32(); err != nil {
		return m, err
	}
	if m.PCount, err = r.u32(); err != nil {
		return m, err
	}
	m.SSize, err = r.u32()
	return m, err
}

func (m *Create) append(b []byte) []byte {
	b = apStr(b, m.Name)
	b = apU32(b, m.Base)
	b = apU32(b, m.PCount)
	return apU32(b, m.SSize)
}

func (m *Create) decode(r *reader) error {
	var err error
	if m.Name, err = r.str(); err != nil {
		return err
	}
	if m.Base, err = r.u32(); err != nil {
		return err
	}
	if m.PCount, err = r.u32(); err != nil {
		return err
	}
	m.SSize, err = r.u32()
	return err
}

func (m *CreateResp) append(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	b = apU64(b, uint64(m.File))
	return apMeta(b, m.Meta)
}

func (m *CreateResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	m.Meta, err = r.meta()
	return err
}

func (m *Open) append(b []byte) []byte { return apStr(b, m.Name) }

func (m *Open) decode(r *reader) error {
	var err error
	m.Name, err = r.str()
	return err
}

func (m *OpenResp) append(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	b = apU64(b, uint64(m.File))
	return apMeta(b, m.Meta)
}

func (m *OpenResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	m.Meta, err = r.meta()
	return err
}

func (m *Stat) append(b []byte) []byte { return apU64(b, uint64(m.File)) }

func (m *Stat) decode(r *reader) error {
	f, err := r.u64()
	m.File = blockio.FileID(f)
	return err
}

func (m *StatResp) append(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	return apMeta(b, m.Meta)
}

func (m *StatResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	m.Meta, err = r.meta()
	return err
}

func (m *Unlink) append(b []byte) []byte { return apStr(b, m.Name) }

func (m *Unlink) decode(r *reader) error {
	var err error
	m.Name, err = r.str()
	return err
}

func (m *SetSize) append(b []byte) []byte {
	b = apU64(b, uint64(m.File))
	return apI64(b, m.Size)
}

func (m *SetSize) decode(r *reader) error {
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	m.Size, err = r.i64()
	return err
}

func (m *List) append(b []byte) []byte { return b }
func (m *List) decode(r *reader) error { return nil }

func (m *ListResp) append(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	b = apU32(b, uint32(len(m.Names)))
	for _, n := range m.Names {
		b = apStr(b, n)
	}
	return b
}

func (m *ListResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	n, err := r.count(4) // each name is at least a u32 length prefix
	if err != nil {
		return err
	}
	m.Names = make([]string, 0, n)
	for i := 0; i < n; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		m.Names = append(m.Names, name)
	}
	return nil
}

func (m *StatusMsg) append(b []byte) []byte { return apU16(b, uint16(m.Status)) }

func (m *StatusMsg) decode(r *reader) error {
	s, err := r.u16()
	m.Status = Status(s)
	return err
}

func (m *Read) append(b []byte) []byte {
	b = apU32(b, m.Client)
	b = apU64(b, uint64(m.File))
	b = apI64(b, m.Offset)
	b = apI64(b, m.Length)
	return apBool(b, m.Track)
}

func (m *Read) decode(r *reader) error {
	var err error
	if m.Client, err = r.u32(); err != nil {
		return err
	}
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Offset, err = r.i64(); err != nil {
		return err
	}
	if m.Length, err = r.i64(); err != nil {
		return err
	}
	m.Track, err = r.bool()
	return err
}

func (m *ReadResp) appendHead(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	return apU32(b, uint32(len(m.Data)))
}

func (m *ReadResp) tail() []byte { return m.Data }

func (m *ReadResp) append(b []byte) []byte { return append(m.appendHead(b), m.Data...) }

func (m *ReadResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	m.Data, err = r.bytes()
	return err
}

func (m *Write) appendHead(b []byte) []byte {
	b = apU32(b, m.Client)
	b = apU64(b, uint64(m.File))
	b = apI64(b, m.Offset)
	return apU32(b, uint32(len(m.Data)))
}

func (m *Write) tail() []byte { return m.Data }

func (m *Write) append(b []byte) []byte { return append(m.appendHead(b), m.Data...) }

func (m *Write) decode(r *reader) error {
	var err error
	if m.Client, err = r.u32(); err != nil {
		return err
	}
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Offset, err = r.i64(); err != nil {
		return err
	}
	m.Data, err = r.bytes()
	return err
}

func (m *WriteAck) append(b []byte) []byte { return apU16(b, uint16(m.Status)) }

func (m *WriteAck) decode(r *reader) error {
	s, err := r.u16()
	m.Status = Status(s)
	return err
}

func (m *SyncWrite) appendHead(b []byte) []byte {
	b = apU32(b, m.Client)
	b = apU64(b, uint64(m.File))
	b = apI64(b, m.Offset)
	return apU32(b, uint32(len(m.Data)))
}

func (m *SyncWrite) tail() []byte { return m.Data }

func (m *SyncWrite) append(b []byte) []byte { return append(m.appendHead(b), m.Data...) }

func (m *SyncWrite) decode(r *reader) error {
	var err error
	if m.Client, err = r.u32(); err != nil {
		return err
	}
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Offset, err = r.i64(); err != nil {
		return err
	}
	m.Data, err = r.bytes()
	return err
}

func (m *SyncWriteAck) append(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	return apU32(b, m.Invalidated)
}

func (m *SyncWriteAck) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	m.Invalidated, err = r.u32()
	return err
}

func (m *Flush) append(b []byte) []byte {
	b = apU32(b, m.Client)
	b = apU64(b, uint64(m.File))
	b = apU32(b, uint32(len(m.Blocks)))
	for _, blk := range m.Blocks {
		b = apI64(b, blk.Index)
		b = apU32(b, blk.Off)
		b = apBytes(b, blk.Data)
	}
	return b
}

func (m *Flush) decode(r *reader) error {
	var err error
	if m.Client, err = r.u32(); err != nil {
		return err
	}
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	n, err := r.count(16) // index + off + data length prefix
	if err != nil {
		return err
	}
	m.Blocks = make([]FlushBlock, 0, n)
	for i := 0; i < n; i++ {
		var blk FlushBlock
		if blk.Index, err = r.i64(); err != nil {
			return err
		}
		if blk.Off, err = r.u32(); err != nil {
			return err
		}
		if blk.Data, err = r.bytes(); err != nil {
			return err
		}
		m.Blocks = append(m.Blocks, blk)
	}
	return nil
}

func (m *FlushAck) append(b []byte) []byte { return apU16(b, uint16(m.Status)) }

func (m *FlushAck) decode(r *reader) error {
	s, err := r.u16()
	m.Status = Status(s)
	return err
}

func (m *Invalidate) append(b []byte) []byte {
	b = apU64(b, uint64(m.File))
	b = apBool(b, m.Drain)
	b = apU32(b, uint32(len(m.Indices)))
	for _, idx := range m.Indices {
		b = apI64(b, idx)
	}
	return b
}

func (m *Invalidate) decode(r *reader) error {
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Drain, err = r.bool(); err != nil {
		return err
	}
	n, err := r.count(8)
	if err != nil {
		return err
	}
	m.Indices = make([]int64, 0, n)
	for i := 0; i < n; i++ {
		idx, err := r.i64()
		if err != nil {
			return err
		}
		m.Indices = append(m.Indices, idx)
	}
	return nil
}

func (m *InvalidAck) append(b []byte) []byte { return apU16(b, uint16(m.Status)) }

func (m *InvalidAck) decode(r *reader) error {
	s, err := r.u16()
	m.Status = Status(s)
	return err
}

func (m *PeerGet) append(b []byte) []byte {
	b = apU64(b, uint64(m.File))
	b = apI64(b, m.Index)
	return apU64(b, m.Epoch)
}

func (m *PeerGet) decode(r *reader) error {
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Index, err = r.i64(); err != nil {
		return err
	}
	m.Epoch, err = r.u64()
	return err
}

func (m *PeerGetResp) appendHead(b []byte) []byte {
	b = apU16(b, uint16(m.Status))
	return apU32(b, uint32(len(m.Data)))
}

func (m *PeerGetResp) tail() []byte { return m.Data }

func (m *PeerGetResp) append(b []byte) []byte { return append(m.appendHead(b), m.Data...) }

func (m *PeerGetResp) decode(r *reader) error {
	s, err := r.u16()
	if err != nil {
		return err
	}
	m.Status = Status(s)
	m.Data, err = r.bytes()
	return err
}
