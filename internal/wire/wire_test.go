package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"pvfscache/internal/blockio"
)

// roundTrip encodes m through a buffer and decodes it back.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write %v: %v", m.WireType(), err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", m.WireType(), err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		&Create{Name: "data/mesh.bin", Base: 2, PCount: 4, SSize: 65536},
		&CreateResp{Status: StatusOK, File: 42, Meta: FileMeta{Size: 1 << 20, Base: 1, PCount: 3, SSize: 8192}},
		&Open{Name: "x"},
		&OpenResp{Status: StatusNotFound},
		&Stat{File: 9},
		&StatResp{Status: StatusOK, Meta: FileMeta{Size: 7}},
		&Unlink{Name: "gone"},
		&SetSize{File: 3, Size: 1234567},
		&List{},
		&ListResp{Status: StatusOK, Names: []string{"a", "b", "c"}},
		&StatusMsg{Status: StatusExists},
		&Read{Client: 5, File: 11, Offset: 8192, Length: 4096, Track: true},
		&ReadResp{Status: StatusOK, Data: []byte("hello world")},
		&Write{Client: 1, File: 2, Offset: 0, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		&WriteAck{Status: StatusOK},
		&SyncWrite{Client: 2, File: 8, Offset: 100, Data: []byte{1, 2, 3}},
		&SyncWriteAck{Status: StatusOK, Invalidated: 3},
		&Flush{Client: 4, File: 6, Blocks: []FlushBlock{
			{Index: 0, Data: []byte("b0")},
			{Index: 17, Data: []byte("b17")},
		}},
		&FlushAck{Status: StatusOK},
		&Invalidate{File: 6, Indices: []int64{1, 5, 9}},
		&InvalidAck{Status: StatusOK},
		&PeerGet{File: 2, Index: 44},
		&PeerGetResp{Status: StatusOK, Data: []byte("blk")},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%v round trip:\n got %#v\nwant %#v", m.WireType(), got, m)
		}
	}
}

// normalize maps nil and empty slices to a comparable form.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *ReadResp:
		if len(v.Data) == 0 {
			v.Data = []byte{}
		}
	case *PeerGetResp:
		if len(v.Data) == 0 {
			v.Data = []byte{}
		}
	case *ListResp:
		if len(v.Names) == 0 {
			v.Names = []string{}
		}
	case *Invalidate:
		if len(v.Indices) == 0 {
			v.Indices = []int64{}
		}
	case *Flush:
		if len(v.Blocks) == 0 {
			v.Blocks = []FlushBlock{}
		}
	}
	return m
}

func TestEmptyCollections(t *testing.T) {
	got := roundTrip(t, &ListResp{Status: StatusOK}).(*ListResp)
	if len(got.Names) != 0 {
		t.Errorf("names = %v", got.Names)
	}
	inv := roundTrip(t, &Invalidate{File: 1}).(*Invalidate)
	if len(inv.Indices) != 0 {
		t.Errorf("indices = %v", inv.Indices)
	}
	fl := roundTrip(t, &Flush{Client: 1, File: 1}).(*Flush)
	if len(fl.Blocks) != 0 {
		t.Errorf("blocks = %v", fl.Blocks)
	}
}

func TestReadMessageTruncatedHeader(t *testing.T) {
	_, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0}))
	if err == nil {
		t.Fatal("expected error on truncated header")
	}
}

func TestReadMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Read{File: 1, Offset: 2, Length: 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, err := ReadMessage(bytes.NewReader(raw[:len(raw)-2]))
	if err == nil {
		t.Fatal("expected error on truncated payload")
	}
	if err != io.ErrUnexpectedEOF {
		t.Logf("got %v (acceptable, any error)", err)
	}
}

func TestReadMessageUnknownType(t *testing.T) {
	frame := []byte{0, 0, 0, 2, 0xFF, 0xFF}
	_, err := ReadMessage(bytes.NewReader(frame))
	if err == nil {
		t.Fatal("expected unknown-type error")
	}
}

func TestReadMessageOversize(t *testing.T) {
	frame := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}
	_, err := ReadMessage(bytes.NewReader(frame))
	if err != ErrTooLarge {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestReadMessageTrailingBytes(t *testing.T) {
	// A Stat payload is exactly 8 bytes; declare 2 extra.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Stat{File: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw = append(raw, 0xEE, 0xEE)
	// patch the length field: payload = 2 (type) ... wait, length counts type+payload
	raw[3] += 2
	_, err := ReadMessage(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestStatusErrMapping(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Error("OK should map to nil")
	}
	for _, s := range []Status{StatusNotFound, StatusExists, StatusIOError, StatusBadRequest, StatusShortRead} {
		err := s.Err()
		if err == nil {
			t.Errorf("status %d mapped to nil", s)
		}
		if got := StatusFor(err); got != s {
			t.Errorf("StatusFor(%v) = %d, want %d", err, got, s)
		}
	}
	if StatusFor(nil) != StatusOK {
		t.Error("StatusFor(nil) != OK")
	}
}

func TestTypeString(t *testing.T) {
	if TRead.String() != "Read" {
		t.Errorf("TRead = %q", TRead.String())
	}
	if Type(0x9999).String() == "" {
		t.Error("unknown type should still render")
	}
}

// Property: any Read message survives a round trip.
func TestReadRoundTripProperty(t *testing.T) {
	f := func(client uint32, file uint64, off, length int64, track bool) bool {
		m := &Read{Client: client, File: blockio.FileID(file), Offset: off, Length: length, Track: track}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary Write payloads survive a round trip.
func TestWriteRoundTripProperty(t *testing.T) {
	f := func(data []byte, off int64) bool {
		m := &Write{Client: 1, File: 2, Offset: off, Data: data}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		w := got.(*Write)
		return w.Offset == off && bytes.Equal(w.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeMatchesMarshal(t *testing.T) {
	m := &Write{Client: 1, File: 2, Offset: 4096, Data: make([]byte, 4096)}
	if EncodedSize(m) != int64(len(Marshal(m))) {
		t.Error("EncodedSize disagrees with Marshal length")
	}
	// Frame overhead is 6 bytes header + fixed fields.
	if EncodedSize(m) <= 4096 {
		t.Error("encoded size should exceed payload length")
	}
}

func TestBackToBackMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteMessage(&buf, &Stat{File: blockio.FileID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got := m.(*Stat).File; got != blockio.FileID(i) {
			t.Errorf("msg %d: file = %d", i, got)
		}
	}
}

func TestTaggedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := &Read{Client: 7, File: 3, Offset: 4096, Length: 8192, Track: true}
	if err := WriteTagged(&buf, 0xdeadbeefcafe, want); err != nil {
		t.Fatal(err)
	}
	tag, tagged, m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tagged || tag != 0xdeadbeefcafe {
		t.Fatalf("tag = %#x tagged = %v", tag, tagged)
	}
	r, ok := m.(*Read)
	if !ok || *r != *want {
		t.Fatalf("got %+v want %+v", m, want)
	}
}

func TestReadFrameAcceptsUntagged(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Stat{File: 9}); err != nil {
		t.Fatal(err)
	}
	tag, tagged, m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tagged || tag != 0 {
		t.Fatalf("untagged frame reported tag %#x tagged %v", tag, tagged)
	}
	if m.(*Stat).File != 9 {
		t.Fatalf("bad payload: %+v", m)
	}
}

func TestLegacyReaderRejectsTaggedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTagged(&buf, 42, &Stat{File: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("legacy ReadMessage accepted a tagged frame")
	}
}

// TestHostileCountRejected feeds a tiny payload declaring an enormous
// element count: decode must fail instead of pre-allocating gigabytes.
func TestHostileCountRejected(t *testing.T) {
	for _, m := range []Message{&Invalidate{}, &Flush{}, &ListResp{}} {
		payload := m.append(nil)
		// The count is the last u32 in each empty encoding; overwrite it.
		binary.BigEndian.PutUint32(payload[len(payload)-4:], 0xffffffff)
		frame := make([]byte, 6, 6+len(payload))
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)+2))
		binary.BigEndian.PutUint16(frame[4:6], uint16(m.WireType()))
		frame = append(frame, payload...)
		if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
			t.Errorf("%v: hostile count accepted", m.WireType())
		}
	}
}
