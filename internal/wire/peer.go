package wire

import "pvfscache/internal/blockio"

// PeerPut pushes one whole block into a peer node's cache — the
// global-cache extension's block placement: after fetching a block from an
// iod, a node forwards a copy to the block's home node so that later
// misses anywhere in the cluster can be served from cluster memory before
// touching the iod.
type PeerPut struct {
	File  blockio.FileID
	Index int64
	Owner uint32 // iod index storing the block
	Epoch uint64 // sender's membership epoch (0 = unchecked, static rings)
	Data  []byte
}

// PeerPutAck acknowledges a PeerPut.
type PeerPutAck struct{ Status Status }

// Global-cache message types (extension group).
const (
	TPeerPut    Type = 0x0503
	TPeerPutAck Type = 0x0504
)

// WireType implementations.
func (*PeerPut) WireType() Type    { return TPeerPut }
func (*PeerPutAck) WireType() Type { return TPeerPutAck }

func (m *PeerPut) appendHead(b []byte) []byte {
	b = apU64(b, uint64(m.File))
	b = apI64(b, m.Index)
	b = apU32(b, m.Owner)
	b = apU64(b, m.Epoch)
	return apU32(b, uint32(len(m.Data)))
}

func (m *PeerPut) tail() []byte { return m.Data }

func (m *PeerPut) append(b []byte) []byte { return append(m.appendHead(b), m.Data...) }

func (m *PeerPut) decode(r *reader) error {
	f, err := r.u64()
	if err != nil {
		return err
	}
	m.File = blockio.FileID(f)
	if m.Index, err = r.i64(); err != nil {
		return err
	}
	if m.Owner, err = r.u32(); err != nil {
		return err
	}
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	m.Data, err = r.bytes()
	return err
}

func (m *PeerPutAck) append(b []byte) []byte { return apU16(b, uint16(m.Status)) }

func (m *PeerPutAck) decode(r *reader) error {
	s, err := r.u16()
	m.Status = Status(s)
	return err
}
