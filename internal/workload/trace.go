package workload

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Trace is the durable record of one run: the scenario identity (enough
// to regenerate the Spec bit-for-bit) plus every op in the global order
// it was issued. Write payloads are not stored — Fill regenerates them
// from the op parameters — so traces stay compact even for large runs.
type Trace struct {
	Scenario string
	Params   Params
	Records  []Record
}

// Record is one executed op plus its outcome. Err is the error text
// ("" = success); replay compares op sequences, not outcomes, since an
// injected fault's timing may land differently in-process. T is the op's
// completion time in nanoseconds since the run started — the chaos
// harness uses it to check that op errors stay inside the fault window
// (bounded-error accounting).
type Record struct {
	Op
	T   int64
	Err string
}

// traceMagic versions the binary format.
const traceMagic = "PVFSWLT1"

// Encode writes the trace in its compact binary form: a magic header,
// varint-packed scenario parameters, then one varint-packed record per
// op in Seq order.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putV := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putStr := func(s string) {
		putUv(uint64(len(s)))
		bw.WriteString(s)
	}
	putStr(t.Scenario)
	p := t.Params
	putV(int64(p.Clients))
	putV(int64(p.Nodes))
	putV(int64(p.OpsPerClient))
	putV(p.FileSize)
	putV(p.MaxIO)
	putV(p.Seed)
	putUv(uint64(len(t.Records)))
	for _, r := range t.Records {
		putUv(r.Seq)
		putV(int64(r.Client))
		putUv(uint64(r.Kind))
		putV(int64(r.File))
		putV(r.Off)
		putV(r.Len)
		putV(r.T)
		putStr(r.Err)
	}
	return bw.Flush()
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if !bytes.Equal(magic, []byte(traceMagic)) {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic)
	}
	var firstErr error
	getUv := func() uint64 {
		if firstErr != nil {
			return 0
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			firstErr = err
		}
		return v
	}
	getV := func() int64 {
		if firstErr != nil {
			return 0
		}
		v, err := binary.ReadVarint(br)
		if err != nil {
			firstErr = err
		}
		return v
	}
	getStr := func() string {
		n := getUv()
		if firstErr != nil {
			return ""
		}
		if n > 1<<20 {
			firstErr = fmt.Errorf("workload: trace string length %d implausible", n)
			return ""
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			firstErr = err
			return ""
		}
		return string(b)
	}
	t := &Trace{}
	t.Scenario = getStr()
	t.Params.Clients = int(getV())
	t.Params.Nodes = int(getV())
	t.Params.OpsPerClient = int(getV())
	t.Params.FileSize = getV()
	t.Params.MaxIO = getV()
	t.Params.Seed = getV()
	n := getUv()
	if firstErr != nil {
		return nil, fmt.Errorf("workload: trace decode: %w", firstErr)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("workload: trace record count %d implausible", n)
	}
	t.Records = make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec Record
		rec.Seq = getUv()
		rec.Client = int(getV())
		rec.Kind = Kind(getUv())
		rec.File = int(getV())
		rec.Off = getV()
		rec.Len = getV()
		rec.T = getV()
		rec.Err = getStr()
		if firstErr != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", i, firstErr)
		}
		if rec.Kind >= kindCount {
			return nil, fmt.Errorf("workload: trace record %d: bad kind %d", i, rec.Kind)
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Verify checks that this trace's ops are exactly the ops its scenario
// regenerates from its parameters — the replay acceptance: trace + seed
// fully determines the op sequence. It regenerates the Spec, groups the
// trace records per client, and compares program order field-for-field.
func (t *Trace) Verify() error {
	spec, err := t.Regenerate()
	if err != nil {
		return err
	}
	perClient := make([][]Record, len(spec.Ops))
	for _, r := range t.Records {
		if r.Client < 0 || r.Client >= len(perClient) {
			return fmt.Errorf("workload: trace names client %d of %d", r.Client, len(perClient))
		}
		perClient[r.Client] = append(perClient[r.Client], r)
	}
	for c, recs := range perClient {
		// Records arrive in global Seq order; within one client that is
		// also program order.
		sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		want := spec.Ops[c]
		if len(recs) != len(want) {
			return fmt.Errorf("workload: client %d ran %d ops, scenario generates %d", c, len(recs), len(want))
		}
		for i, r := range recs {
			w := want[i]
			if r.Kind != w.Kind || r.File != w.File || r.Off != w.Off || r.Len != w.Len {
				return fmt.Errorf("workload: client %d op %d diverges: trace %v file=%d [%d,+%d), scenario %v file=%d [%d,+%d)",
					c, i, r.Kind, r.File, r.Off, r.Len, w.Kind, w.File, w.Off, w.Len)
			}
		}
	}
	return nil
}

// Regenerate rebuilds the Spec this trace was recorded from.
func (t *Trace) Regenerate() (*Spec, error) {
	sc, err := Lookup(t.Scenario)
	if err != nil {
		return nil, err
	}
	return sc.Generate(t.Params)
}

// Recorder accumulates records from concurrently running clients and
// stamps the global issue order. One Recorder per run.
type Recorder struct {
	start time.Time
	mu    sync.Mutex
	seq   uint64
	recs  []Record
}

// NewRecorder returns an empty recorder; record times are relative to
// this call.
func NewRecorder() *Recorder { return &Recorder{start: time.Now()} }

// Begin stamps op with the next global sequence number and returns it.
// Call it immediately before issuing the op, so Seq order is issue order.
func (r *Recorder) Begin(op Op) Op {
	r.mu.Lock()
	r.seq++
	op.Seq = r.seq
	r.mu.Unlock()
	return op
}

// Since returns nanoseconds elapsed since the recorder started — the
// clock record timestamps are expressed in.
func (r *Recorder) Since() int64 { return int64(time.Since(r.start)) }

// Count returns how many ops have completed so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// End records the outcome of a begun op.
func (r *Recorder) End(op Op, err error) {
	rec := Record{Op: op, T: int64(time.Since(r.start))}
	if err != nil {
		rec.Err = err.Error()
	}
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

// Trace snapshots the records so far, in Seq order, for the given
// scenario identity.
func (r *Recorder) Trace(scenario string, p Params) *Trace {
	r.mu.Lock()
	recs := make([]Record, len(r.recs))
	copy(recs, r.recs)
	r.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return &Trace{Scenario: scenario, Params: p, Records: recs}
}
