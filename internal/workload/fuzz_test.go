package workload

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode hammers the trace decoder with arbitrary bytes: it must
// return an error or a structurally valid trace, never panic or
// over-allocate, matching the hostile-input guarantees of the wire
// decoders.
func FuzzTraceDecode(f *testing.F) {
	seed := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Trace{Scenario: "sequential", Params: Params{Clients: 2, Seed: 9}}))
	f.Add(seed(&Trace{
		Scenario: "zipfian",
		Params:   Params{Clients: 3, Nodes: 2, OpsPerClient: 4, FileSize: 4096, MaxIO: 512, Seed: -1},
		Records: []Record{
			{Op: Op{Seq: 1, Client: 0, Kind: KindWrite, File: 0, Off: 0, Len: 512}},
			{Op: Op{Seq: 2, Client: 1, Kind: KindRead, File: 0, Off: 512, Len: 512}, Err: "injected"},
		},
	}))
	f.Add([]byte("PVFSWLT1"))
	f.Add([]byte("PVFSWLT2junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded trace must re-encode and decode to the same value.
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		if back.Scenario != tr.Scenario || back.Params != tr.Params || len(back.Records) != len(tr.Records) {
			t.Fatalf("round trip diverged: %+v vs %+v", back, tr)
		}
	})
}
