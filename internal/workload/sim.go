package workload

import (
	"fmt"
	"time"

	"pvfscache/internal/blockio"
	"pvfscache/internal/sim"
	"pvfscache/internal/simcluster"
	"pvfscache/internal/wire"
)

// SimResult summarizes one DES execution of a Spec.
type SimResult struct {
	Elapsed time.Duration // virtual time for the whole run
	Ops     int           // data ops executed (reads + writes)
	Skipped int           // metadata/flush ops the model has no server for
}

// RunSim executes a Spec on the discrete-event simulator: the same op
// streams a live chaos run executes, replayed against the calibrated
// timing model, so a contention pattern found live can be studied with
// virtual time and perfect determinism. Data content is not modeled (the
// DES simulates timing and cache policy only), so the oracle does not
// apply here; flushes ride the model's own flusher daemons and metadata
// ops are counted but skipped (the DES has no mgr).
//
// The cluster must be freshly built and not yet run; RunSim starts the
// client procs, runs the event loop to completion, and returns the
// virtual elapsed time.
func RunSim(c *simcluster.Cluster, spec *Spec) (SimResult, error) {
	if len(c.Nodes) == 0 {
		return SimResult{}, fmt.Errorf("workload: simulated cluster has no nodes")
	}
	files := make([]simFile, len(spec.Files))
	for i, fs := range spec.Files {
		id := c.CreateFile(fs.Name, fs.Size, false)
		_, meta := c.Lookup(fs.Name)
		files[i] = simFile{id: id, meta: meta}
	}
	res := SimResult{}
	bar := &simBarrier{env: c.Env, n: len(spec.Ops), sig: c.Env.NewSignal()}
	remaining := len(spec.Ops)
	for cl := range spec.Ops {
		cl := cl
		node := c.Nodes[spec.Placement[cl]%len(c.Nodes)]
		ops := spec.Ops[cl]
		c.Env.Go(fmt.Sprintf("wl.client%d", cl), func(p *sim.Proc) {
			for _, op := range ops {
				switch op.Kind {
				case KindRead:
					f := files[op.File]
					c.Read(p, node, f.id, f.meta, op.Off, op.Len)
					res.Ops++
				case KindWrite:
					f := files[op.File]
					c.Write(p, node, f.id, f.meta, op.Off, op.Len)
					res.Ops++
				case KindBarrier:
					bar.wait(p)
				default:
					// Flush rides the model's flusher daemons; metadata ops
					// have no simulated mgr. Count them so callers can see
					// coverage, and charge a token CPU cost so storms still
					// contend for the node.
					res.Skipped++
					node.CPU.Use(p, 10*time.Microsecond)
				}
			}
			remaining--
			if remaining == 0 {
				c.Finish()
			}
		})
	}
	elapsed := c.Env.Run()
	res.Elapsed = elapsed
	if blocked := c.Env.Deadlocked(); blocked > 0 {
		return res, fmt.Errorf("workload: simulated run deadlocked with %d blocked procs", blocked)
	}
	if remaining != 0 {
		return res, fmt.Errorf("workload: %d simulated clients did not finish", remaining)
	}
	return res, nil
}

type simFile struct {
	id   blockio.FileID
	meta wire.FileMeta
}

// simBarrier is a cyclic rendezvous for the DES's cooperative procs: the
// last arrival fires the signal and re-arms it for the next round. The
// event loop is single-threaded, so plain fields suffice.
type simBarrier struct {
	env     *sim.Env
	n       int
	arrived int
	sig     *sim.Signal
}

func (b *simBarrier) wait(p *sim.Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		old := b.sig
		b.sig = b.env.NewSignal()
		old.Fire()
		return
	}
	b.sig.Wait(p)
}
