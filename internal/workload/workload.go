// Package workload generates mixed application workloads from a single
// seed and records them as compact, replayable traces — the scale half of
// ROADMAP item 5 ("thousands of clients, seeded faults, one oracle").
//
// A Scenario turns Params into a Spec: the files to create, the node each
// client runs on, and one deterministic op stream per client. The same
// Spec runs against the live cluster (internal/chaos drives it and judges
// every run with the consistency oracle) and against the discrete-event
// simulator (RunSim in this package), so a contention pattern observed
// live can be re-examined on the calibrated model and vice versa.
//
// Two properties make the streams verifiable and replayable:
//
//   - Write ownership: every client's writes stay inside its own region
//     of each file, so a byte's expected value is always well defined
//     even with hundreds of clients running concurrently. Reads may roam
//     (the zipfian scenario's whole-file hot spot), and cross-node reads
//     of foreign regions only happen after a flush + barrier, which is
//     what the system's weak inter-node coherence actually guarantees.
//   - Determinism: the op streams are a pure function of (scenario,
//     Params), and write payloads are a pure function of (seed, file,
//     offset, seq) via Fill. A trace therefore only needs the op
//     parameters — never the data — to replay byte-identically.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Kind is the type of one application-level operation.
type Kind uint8

// Op kinds. Barrier is a full rendezvous of every client in the run —
// generators use it to order phases (produce before consume) without
// relying on wall-clock timing; replay executes ops in recorded sequence
// order, where a barrier is naturally a no-op.
const (
	KindRead Kind = iota
	KindWrite
	KindFlush   // drain this client's node cache (Module.FlushAll)
	KindBarrier // rendezvous: no client proceeds until all arrive
	KindCreate  // metadata: create a scratch file
	KindUnlink  // metadata: unlink a scratch file
	KindList    // metadata: list the namespace
	kindCount
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindFlush:
		return "flush"
	case KindBarrier:
		return "barrier"
	case KindCreate:
		return "create"
	case KindUnlink:
		return "unlink"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one operation of one client's stream. Seq is zero at generation
// time; the runner stamps the global issue order into it, and that order
// is what a trace records and a replay re-executes.
type Op struct {
	Seq    uint64
	Client int
	Kind   Kind
	File   int   // index into Spec.Files (reads/writes); scratch id (create/unlink)
	Off    int64 // byte offset (reads/writes)
	Len    int64 // byte length (reads/writes)
}

// FileSpec describes one file a scenario touches.
type FileSpec struct {
	Name   string
	Size   int64
	SSize  int64 // stripe size (0 = cluster default)
	PCount int   // stripe width (0 = all iods)
}

// Spec is a fully generated workload: files, client placement, and one op
// stream per client. Every client has the same number of barriers, in the
// same phase order, so rendezvous cannot deadlock.
type Spec struct {
	Scenario  string
	Params    Params
	Files     []FileSpec
	Placement []int  // node index per client
	Ops       [][]Op // per client, in program order
}

// TotalOps counts the ops across every client.
func (s *Spec) TotalOps() int {
	n := 0
	for _, ops := range s.Ops {
		n += len(ops)
	}
	return n
}

// Params sizes a scenario. The zero value is filled with defaults by
// Validate; every generator calls it.
type Params struct {
	// Clients is the number of application clients (default 8). Scenarios
	// place them on nodes round-robin unless they need a fixed placement
	// (zipfian keeps everyone on node 0 so the shared cache is the
	// contention point).
	Clients int
	// Nodes is the number of client nodes available (default 2).
	Nodes int
	// OpsPerClient bounds each client's stream length (default 64).
	OpsPerClient int
	// FileSize is each data file's size in bytes (default 1 MB). Client
	// write regions are FileSize/Clients, so FileSize must comfortably
	// exceed Clients.
	FileSize int64
	// MaxIO caps a single read/write length (default 16 KB).
	MaxIO int64
	// Seed drives every random choice; equal seeds give equal streams.
	Seed int64
}

// Validate fills defaults and rejects inconsistent parameters.
func (p *Params) Validate() error {
	if p.Clients <= 0 {
		p.Clients = 8
	}
	if p.Nodes <= 0 {
		p.Nodes = 2
	}
	if p.OpsPerClient <= 0 {
		p.OpsPerClient = 64
	}
	if p.FileSize <= 0 {
		p.FileSize = 1 << 20
	}
	if p.MaxIO <= 0 {
		p.MaxIO = 16 << 10
	}
	if p.FileSize/int64(p.Clients) < 1 {
		return fmt.Errorf("workload: FileSize %d too small for %d clients", p.FileSize, p.Clients)
	}
	return nil
}

// region returns client c's owned byte range [start, end) of a file.
// Writes never leave it; the last client absorbs the rounding remainder.
func (p Params) region(c int) (start, end int64) {
	size := p.FileSize / int64(p.Clients)
	start = int64(c) * size
	end = start + size
	if c == p.Clients-1 {
		end = p.FileSize
	}
	return start, end
}

// Scenario is one named workload shape.
type Scenario struct {
	Name string
	Desc string
	// Generate builds the deterministic Spec for the given parameters.
	Generate func(p Params) (*Spec, error)
}

// Scenarios lists every built-in scenario in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{"sequential", "each client writes then re-reads its own region in order", genSequential},
		{"strided", "interleaved strided passes over each client's region", genStrided},
		{"zipfian", "hot-spot zipf reads over the whole file, writes in own regions, one shared node cache", genZipfian},
		{"prodcons", "producers write and flush, a barrier, then consumers on another node read", genProdCons},
		{"metadata", "namespace create/list/unlink storms interleaved with small data ops", genMetadata},
		{"antagonist", "one client saturates the shared node cache with max-size writes while the rest run small ops", genAntagonist},
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	var known []string
	for _, s := range Scenarios() {
		known = append(known, s.Name)
	}
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, known)
}

// Fill writes the deterministic payload of a write op into dst: a pure
// function of (seed, file, off, seq), so the oracle and a replay can both
// regenerate the bytes from the op record alone.
func Fill(dst []byte, seed int64, file int, off int64, seq uint64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^
		uint64(file+1)*0xBF58476D1CE4E5B9 ^
		uint64(off+1)*0x94D049BB133111EB ^
		(seq+1)*0xD6E8FEB86659FD93
	for i := range dst {
		// xorshift64: cheap, full-period, and stable across platforms.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst[i] = byte(x)
	}
}

// roundRobin places client c on a node.
func roundRobin(p Params, c int) int { return c % p.Nodes }

// --- scenario generators ---

// genSequential: phase 1 writes the client's region start-to-end in MaxIO
// chunks, then a flush and a barrier; phase 2 reads it back in the same
// order. The re-read phase is a pure cache-hit workload on a warm cache
// and a miss workload after chaos evicted or invalidated it.
func genSequential(p Params) (*Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spec := newSpec("sequential", p, []FileSpec{{Name: "wl/seq.dat", Size: p.FileSize}})
	for c := 0; c < p.Clients; c++ {
		spec.Placement[c] = roundRobin(p, c)
		start, end := p.region(c)
		budget := p.OpsPerClient
		half := budget / 2
		spec.Ops[c] = appendPass(spec.Ops[c], c, KindWrite, 0, start, end, p.MaxIO, half)
		spec.Ops[c] = append(spec.Ops[c],
			Op{Client: c, Kind: KindFlush},
			Op{Client: c, Kind: KindBarrier})
		spec.Ops[c] = appendPass(spec.Ops[c], c, KindRead, 0, start, end, p.MaxIO, budget-half-2)
	}
	return spec, nil
}

// genStrided: like sequential but each pass visits every stride-th chunk,
// then shifts by one chunk — the access shape the strided streak detector
// and the vectored miss engine were built for.
func genStrided(p Params) (*Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spec := newSpec("strided", p, []FileSpec{{Name: "wl/strided.dat", Size: p.FileSize}})
	const stride = 4
	for c := 0; c < p.Clients; c++ {
		spec.Placement[c] = roundRobin(p, c)
		start, end := p.region(c)
		chunk := chunkFor(start, end, p.MaxIO)
		budget := p.OpsPerClient
		half := budget / 2
		emit := func(kind Kind, n int) {
			phase := 0
			off := start
			for ; n > 0; n-- {
				spec.Ops[c] = append(spec.Ops[c], clampedOp(c, kind, 0, off, chunk, end))
				off += stride * chunk
				if off >= end {
					phase = (phase + 1) % stride
					off = start + int64(phase)*chunk
				}
			}
		}
		emit(KindWrite, half)
		spec.Ops[c] = append(spec.Ops[c],
			Op{Client: c, Kind: KindFlush},
			Op{Client: c, Kind: KindBarrier})
		emit(KindRead, budget-half-2)
	}
	return spec, nil
}

// genZipfian: every client on node 0, so the node's shared cache is the
// contended resource. Phase 1 seeds each client's region; phase 2 mixes
// zipf-distributed hot-spot reads over the whole file (foreign regions
// included — the shared cache keeps that coherent on one node) with
// writes folded into the client's own region.
func genZipfian(p Params) (*Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spec := newSpec("zipfian", p, []FileSpec{{Name: "wl/zipf.dat", Size: p.FileSize}})
	nChunks := p.FileSize / p.MaxIO
	if nChunks < 1 {
		nChunks = 1
	}
	for c := 0; c < p.Clients; c++ {
		spec.Placement[c] = 0 // one shared cache: the point of the scenario
		start, end := p.region(c)
		budget := p.OpsPerClient
		warm := budget / 4
		spec.Ops[c] = appendPass(spec.Ops[c], c, KindWrite, 0, start, end, p.MaxIO, warm)
		spec.Ops[c] = append(spec.Ops[c],
			Op{Client: c, Kind: KindFlush},
			Op{Client: c, Kind: KindBarrier})
		rng := rand.New(rand.NewSource(p.Seed ^ int64(c)*0x5DEECE66D))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(nChunks-1))
		// Rotate the hot head per seed so different seeds hammer
		// different blocks.
		rot := rng.Int63n(nChunks)
		for n := budget - warm - 2; n > 0; n-- {
			chunk := (int64(zipf.Uint64()) + rot) % nChunks
			off := chunk * p.MaxIO
			length := p.MaxIO
			if off+length > p.FileSize {
				length = p.FileSize - off
			}
			if rng.Float64() < 0.3 {
				// Fold the hot chunk into the client's own region.
				span := end - start
				woff := start + off%max64(span-length, 1)
				spec.Ops[c] = append(spec.Ops[c], clampedOp(c, KindWrite, 0, woff, length, end))
			} else {
				spec.Ops[c] = append(spec.Ops[c], Op{Client: c, Kind: KindRead, File: 0, Off: off, Len: length})
			}
		}
	}
	return spec, nil
}

// genProdCons: clients pair up — even clients produce, odd clients
// consume. Each pair has its own file; the producer writes the whole
// file, flushes, and only after a global barrier does the consumer (on a
// different node when one exists) read it back. The flush + barrier is
// exactly the hand-off the system's weak inter-node coherence guarantees,
// and the access order it produces classifies as producer-consumer in
// internal/sharing's taxonomy.
func genProdCons(p Params) (*Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pairs := p.Clients / 2
	if pairs == 0 {
		return nil, fmt.Errorf("workload: prodcons needs at least 2 clients, got %d", p.Clients)
	}
	files := make([]FileSpec, pairs)
	// Size pair files so a producer pass fits the op budget.
	pairSize := min64(p.FileSize, int64(p.OpsPerClient/2)*p.MaxIO)
	if pairSize < p.MaxIO {
		pairSize = p.MaxIO
	}
	for i := range files {
		files[i] = FileSpec{Name: fmt.Sprintf("wl/pc-%d.dat", i), Size: pairSize}
	}
	spec := newSpec("prodcons", p, files)
	for c := 0; c < p.Clients; c++ {
		pair := c / 2
		if pair >= pairs { // odd trailing client: extra consumer of pair 0
			pair = 0
		}
		budget := p.OpsPerClient - 2
		if c%2 == 0 && c/2 < pairs { // producer
			spec.Placement[c] = 0
			spec.Ops[c] = appendPass(spec.Ops[c], c, KindWrite, pair, 0, pairSize, p.MaxIO, budget)
			spec.Ops[c] = append(spec.Ops[c],
				Op{Client: c, Kind: KindFlush},
				Op{Client: c, Kind: KindBarrier})
		} else { // consumer
			spec.Placement[c] = min(1, p.Nodes-1)
			spec.Ops[c] = append(spec.Ops[c],
				Op{Client: c, Kind: KindFlush}, // symmetric phase shape
				Op{Client: c, Kind: KindBarrier})
			spec.Ops[c] = appendPass(spec.Ops[c], c, KindRead, pair, 0, pairSize, p.MaxIO, budget)
		}
	}
	return spec, nil
}

// genMetadata: namespace storms against the single mgr — create/list/
// unlink cycles of per-client scratch files — interleaved with small
// reads and writes in the client's region of a shared data file, so the
// oracle still verifies bytes while the mgr is hammered.
func genMetadata(p Params) (*Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	spec := newSpec("metadata", p, []FileSpec{{Name: "wl/meta.dat", Size: p.FileSize}})
	for c := 0; c < p.Clients; c++ {
		spec.Placement[c] = roundRobin(p, c)
		start, end := p.region(c)
		rng := rand.New(rand.NewSource(p.Seed ^ int64(c)*0x2545F4914F6CDD1D))
		scratch := 0
		live := 0 // scratch files currently existing
		for n := p.OpsPerClient; n > 0; n-- {
			switch r := rng.Float64(); {
			case r < 0.25:
				spec.Ops[c] = append(spec.Ops[c], Op{Client: c, Kind: KindCreate, File: scratch})
				scratch++
				live++
			case r < 0.40 && live > 0:
				live--
				spec.Ops[c] = append(spec.Ops[c], Op{Client: c, Kind: KindUnlink, File: scratch - live - 1})
			case r < 0.55:
				spec.Ops[c] = append(spec.Ops[c], Op{Client: c, Kind: KindList})
			case r < 0.80:
				off := start + rng.Int63n(max64(end-start-4096, 1))
				spec.Ops[c] = append(spec.Ops[c], clampedOp(c, KindWrite, 0, off, 4096, end))
			default:
				off := start + rng.Int63n(max64(end-start-4096, 1))
				spec.Ops[c] = append(spec.Ops[c], clampedOp(c, KindRead, 0, off, 4096, end))
			}
		}
	}
	return spec, nil
}

// genAntagonist: every client on node 0, and client 0 is the antagonist —
// back-to-back MaxIO writes over its own region, several passes deep, so
// the shared cache's dirty list is saturated by one principal. The
// remaining clients are victims: small alternating reads and writes in
// their own regions. With per-tenant QoS off this is the noisy-neighbour
// shape (victim writes stall behind the antagonist's dirty backlog); with
// quotas on, the antagonist sheds and retries instead. Writes stay
// region-owned either way, so the consistency oracle verifies every byte
// of both tenants.
func genAntagonist(p Params) (*Spec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Clients < 2 {
		return nil, fmt.Errorf("workload: antagonist needs at least 2 clients, got %d", p.Clients)
	}
	spec := newSpec("antagonist", p, []FileSpec{{Name: "wl/antag.dat", Size: p.FileSize}})
	for c := 0; c < p.Clients; c++ {
		spec.Placement[c] = 0 // one shared cache: the contention point
		start, end := p.region(c)
		budget := p.OpsPerClient
		if c == 0 {
			// Antagonist: a saturating maximum-size write pass, no reads.
			spec.Ops[c] = appendPass(spec.Ops[c], c, KindWrite, 0, start, end, p.MaxIO, budget)
			continue
		}
		// Victim: small ops at deterministic pseudo-random offsets in its
		// own region, half reads, half writes.
		rng := rand.New(rand.NewSource(p.Seed ^ int64(c)*0x5DEECE66D))
		const small = 4096
		for n := budget; n > 0; n-- {
			off := start + rng.Int63n(max64(end-start-small, 1))
			kind := KindRead
			if rng.Float64() < 0.5 {
				kind = KindWrite
			}
			spec.Ops[c] = append(spec.Ops[c], clampedOp(c, kind, 0, off, small, end))
		}
	}
	return spec, nil
}

// --- generator helpers ---

func newSpec(name string, p Params, files []FileSpec) *Spec {
	return &Spec{
		Scenario:  name,
		Params:    p,
		Files:     files,
		Placement: make([]int, p.Clients),
		Ops:       make([][]Op, p.Clients),
	}
}

// appendPass emits n sequential ops of the given kind walking [start,
// end) in chunks, wrapping back to start.
func appendPass(ops []Op, c int, kind Kind, file int, start, end, maxIO int64, n int) []Op {
	chunk := chunkFor(start, end, maxIO)
	off := start
	for ; n > 0; n-- {
		ops = append(ops, clampedOp(c, kind, file, off, chunk, end))
		off += chunk
		if off >= end {
			off = start
		}
	}
	return ops
}

// chunkFor picks the chunk size for a pass over [start, end).
func chunkFor(start, end, maxIO int64) int64 {
	chunk := maxIO
	if span := end - start; chunk > span {
		chunk = span
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// clampedOp builds a read/write op clipped to the region end.
func clampedOp(c int, kind Kind, file int, off, length, end int64) Op {
	if off+length > end {
		length = end - off
	}
	return Op{Client: c, Kind: kind, File: file, Off: off, Len: length}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
