package workload

import (
	"bytes"
	"path/filepath"
	"testing"

	"pvfscache/internal/sim"
	"pvfscache/internal/simcluster"
)

func TestScenariosDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			p := Params{Clients: 6, Nodes: 2, OpsPerClient: 40, FileSize: 256 << 10, MaxIO: 8 << 10, Seed: 42}
			a, err := sc.Generate(p)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			b, err := sc.Generate(p)
			if err != nil {
				t.Fatalf("regenerate: %v", err)
			}
			if len(a.Ops) != len(b.Ops) {
				t.Fatalf("client counts differ: %d vs %d", len(a.Ops), len(b.Ops))
			}
			for c := range a.Ops {
				if len(a.Ops[c]) != len(b.Ops[c]) {
					t.Fatalf("client %d op counts differ: %d vs %d", c, len(a.Ops[c]), len(b.Ops[c]))
				}
				for i := range a.Ops[c] {
					if a.Ops[c][i] != b.Ops[c][i] {
						t.Fatalf("client %d op %d differs: %+v vs %+v", c, i, a.Ops[c][i], b.Ops[c][i])
					}
				}
			}
		})
	}
}

func TestScenariosSeedVaries(t *testing.T) {
	// Seed must actually matter for the randomized scenarios.
	for _, name := range []string{"zipfian", "metadata"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Clients: 4, OpsPerClient: 60, Seed: 1}
		a, _ := sc.Generate(p)
		p.Seed = 2
		b, _ := sc.Generate(p)
		same := true
	outer:
		for c := range a.Ops {
			for i := range a.Ops[c] {
				if i >= len(b.Ops[c]) || a.Ops[c][i] != b.Ops[c][i] {
					same = false
					break outer
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 generated identical streams", name)
		}
	}
}

func TestWriteOwnership(t *testing.T) {
	// Every scenario must keep each client's writes inside its own region
	// (prodcons partitions by file instead: producers own whole files).
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			p := Params{Clients: 5, Nodes: 3, OpsPerClient: 80, FileSize: 512 << 10, MaxIO: 8 << 10, Seed: 7}
			spec, err := sc.Generate(p)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			writers := make(map[int]map[int]bool) // file -> set of writing clients
			for c, ops := range spec.Ops {
				start, end := spec.Params.region(c)
				for _, op := range ops {
					if op.Kind != KindWrite {
						continue
					}
					if op.Len <= 0 {
						t.Fatalf("client %d: empty write %+v", c, op)
					}
					if sc.Name == "prodcons" {
						if writers[op.File] == nil {
							writers[op.File] = make(map[int]bool)
						}
						writers[op.File][c] = true
						continue
					}
					if op.Off < start || op.Off+op.Len > end {
						t.Fatalf("client %d writes [%d,+%d) outside its region [%d,%d)", c, op.Off, op.Len, start, end)
					}
				}
			}
			for f, ws := range writers {
				if len(ws) > 1 {
					t.Fatalf("prodcons file %d has %d writers", f, len(ws))
				}
			}
		})
	}
}

func TestBarrierCountsMatch(t *testing.T) {
	// Equal barrier counts per client is the no-deadlock invariant.
	for _, sc := range Scenarios() {
		spec, err := sc.Generate(Params{Clients: 7, OpsPerClient: 30, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		want := -1
		for c, ops := range spec.Ops {
			n := 0
			for _, op := range ops {
				if op.Kind == KindBarrier {
					n++
				}
			}
			if want == -1 {
				want = n
			} else if n != want {
				t.Fatalf("%s: client %d has %d barriers, client 0 has %d", sc.Name, c, n, want)
			}
		}
	}
}

func TestFillDeterministicAndVaried(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	Fill(a, 1, 2, 4096, 9)
	Fill(b, 1, 2, 4096, 9)
	if !bytes.Equal(a, b) {
		t.Fatal("Fill not deterministic")
	}
	Fill(b, 1, 2, 4096, 10)
	if bytes.Equal(a, b) {
		t.Fatal("Fill ignores seq")
	}
	Fill(b, 2, 2, 4096, 9)
	if bytes.Equal(a, b) {
		t.Fatal("Fill ignores seed")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	sc, _ := Lookup("sequential")
	p := Params{Clients: 3, OpsPerClient: 20, Seed: 11}
	spec, err := sc.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	for c := range spec.Ops {
		for _, op := range spec.Ops[c] {
			op = rec.Begin(op)
			rec.End(op, nil)
		}
	}
	tr := rec.Trace(spec.Scenario, spec.Params)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := tr.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Scenario != tr.Scenario || got.Params != tr.Params {
		t.Fatalf("header round trip: got %q %+v", got.Scenario, got.Params)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count: got %d want %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got.Records[i], tr.Records[i])
		}
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestTraceVerifyCatchesDivergence(t *testing.T) {
	sc, _ := Lookup("sequential")
	p := Params{Clients: 2, OpsPerClient: 10, Seed: 5}
	spec, _ := sc.Generate(p)
	rec := NewRecorder()
	for c := range spec.Ops {
		for _, op := range spec.Ops[c] {
			rec.End(rec.Begin(op), nil)
		}
	}
	tr := rec.Trace(spec.Scenario, spec.Params)
	tr.Records[3].Off += 512 // tamper
	if err := tr.Verify(); err == nil {
		t.Fatal("Verify accepted a tampered trace")
	}
}

func TestTraceDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("decode accepted bad magic")
	}
	var buf bytes.Buffer
	tr := &Trace{Scenario: "sequential", Params: Params{Clients: 1}}
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	// An empty trace truncated by one byte must not round-trip silently.
	if _, err := Decode(bytes.NewReader(append(trunc[:len(trunc):len(trunc)], 0xFF, 0xFF))); err == nil {
		// Appending garbage after a valid trace is tolerated (stream may be
		// padded); truncation of a non-empty one is the real risk, covered
		// by fuzzing the decoder below.
		t.Skip("padding tolerated")
	}
}

func TestRunSimAllScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			p := Params{Clients: 4, Nodes: 2, OpsPerClient: 24, FileSize: 128 << 10, MaxIO: 8 << 10, Seed: 13}
			spec, err := sc.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			env := sim.NewEnv()
			c := simcluster.New(env, simcluster.DefaultParams(), 4, 2, true)
			res, err := RunSim(c, spec)
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("no virtual time elapsed (ops=%d)", res.Ops)
			}
			t.Logf("%s: %d data ops, %d skipped, %v virtual", sc.Name, res.Ops, res.Skipped, res.Elapsed)
		})
	}
}

func TestRunSimDeterministic(t *testing.T) {
	run := func() (SimResult, error) {
		sc, _ := Lookup("zipfian")
		spec, err := sc.Generate(Params{Clients: 3, OpsPerClient: 30, FileSize: 64 << 10, MaxIO: 4 << 10, Seed: 99})
		if err != nil {
			return SimResult{}, err
		}
		env := sim.NewEnv()
		c := simcluster.New(env, simcluster.DefaultParams(), 2, 2, true)
		return RunSim(c, spec)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("sim runs diverged: %+v vs %+v", a, b)
	}
}
