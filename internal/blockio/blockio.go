// Package blockio provides the block arithmetic shared by the PVFS client,
// the I/O daemons and the cache module.
//
// The cache operates on fixed-size blocks (4 KB in the paper, matching the
// Linux page size). File byte ranges are decomposed into block spans: a span
// names one block plus the sub-range of that block the request touches.
package blockio

import "fmt"

// DefaultBlockSize is the cache block size used throughout the paper:
// 4 KB, chosen to equal the page size.
const DefaultBlockSize = 4096

// FileID identifies a file in the cluster namespace. IDs are allocated by
// the metadata server and are never reused within a cluster lifetime.
type FileID uint64

// BlockKey identifies one cache block: a file and a block index within it.
type BlockKey struct {
	File  FileID
	Index int64
}

// String renders the key as "file:index" for logs and tests.
func (k BlockKey) String() string { return fmt.Sprintf("%d:%d", k.File, k.Index) }

// Mix returns a well-distributed 64-bit hash of the key (a Fibonacci/
// SplitMix-style multiply-xor). It is the single routing hash of the
// system: the global cache chooses a block's home node from its low bits
// (Mix % peers) and the buffer manager chooses the block's shard from its
// high bits ((Mix >> 32) & mask). One hash, two disjoint bit ranges — so
// the layers stripe consistently yet independently: conditioning on a
// block's home node must not collapse its shard distribution.
func (k BlockKey) Mix() uint64 {
	h := uint64(k.File)*0x9E3779B97F4A7C15 + uint64(k.Index)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return h
}

// Span is the intersection of a byte range with a single block.
// Off is the offset of the range within the block; Len never exceeds
// blockSize-Off.
type Span struct {
	Key BlockKey
	Off int   // offset within the block
	Len int   // bytes of the block covered
	Pos int64 // offset of this span within the original request buffer
}

// Full reports whether the span covers the entire block.
func (s Span) Full(blockSize int) bool { return s.Off == 0 && s.Len == blockSize }

// FileOffset returns the absolute file offset of the span's first byte.
func (s Span) FileOffset(blockSize int) int64 {
	return s.Key.Index*int64(blockSize) + int64(s.Off)
}

// Spans decomposes the byte range [offset, offset+length) of file into
// block spans, in increasing block order. A zero or negative length yields
// no spans. blockSize must be positive.
func Spans(file FileID, offset, length int64, blockSize int) []Span {
	if length <= 0 {
		return nil
	}
	if blockSize <= 0 {
		panic("blockio: non-positive block size")
	}
	bs := int64(blockSize)
	first := offset / bs
	last := (offset + length - 1) / bs
	spans := make([]Span, 0, last-first+1)
	pos := int64(0)
	for idx := first; idx <= last; idx++ {
		blockStart := idx * bs
		off := int64(0)
		if idx == first {
			off = offset - blockStart
		}
		end := bs
		if idx == last {
			end = offset + length - blockStart
		}
		spans = append(spans, Span{
			Key: BlockKey{File: file, Index: idx},
			Off: int(off),
			Len: int(end - off),
			Pos: pos,
		})
		pos += end - off
	}
	return spans
}

// BlockRange returns the first block index and the number of blocks touched
// by the byte range [offset, offset+length).
func BlockRange(offset, length int64, blockSize int) (first int64, count int64) {
	if length <= 0 {
		return offset / int64(blockSize), 0
	}
	bs := int64(blockSize)
	first = offset / bs
	last := (offset + length - 1) / bs
	return first, last - first + 1
}

// Blocks returns the number of whole blocks needed to hold n bytes.
func Blocks(n int64, blockSize int) int64 {
	bs := int64(blockSize)
	return (n + bs - 1) / bs
}

// Extent is a contiguous byte range within one file. Extents are the unit
// the client library aggregates into per-iod network requests, and the unit
// the cache module splits around cached holes.
type Extent struct {
	File   FileID
	Offset int64
	Length int64
}

// End returns the exclusive end offset of the extent.
func (e Extent) End() int64 { return e.Offset + e.Length }

// Empty reports whether the extent covers no bytes.
func (e Extent) Empty() bool { return e.Length <= 0 }

// Overlaps reports whether e and o share at least one byte of the same file.
func (e Extent) Overlaps(o Extent) bool {
	return e.File == o.File && e.Offset < o.End() && o.Offset < e.End()
}

// Intersect returns the overlapping byte range of e and o. The boolean is
// false when they do not overlap.
func (e Extent) Intersect(o Extent) (Extent, bool) {
	if !e.Overlaps(o) {
		return Extent{}, false
	}
	start := maxI64(e.Offset, o.Offset)
	end := minI64(e.End(), o.End())
	return Extent{File: e.File, Offset: start, Length: end - start}, true
}

// MergeAdjacent coalesces sorted, same-file extents that touch or overlap.
// The input must be sorted by (File, Offset); the output preserves order.
func MergeAdjacent(exts []Extent) []Extent {
	if len(exts) == 0 {
		return nil
	}
	out := make([]Extent, 0, len(exts))
	cur := exts[0]
	for _, e := range exts[1:] {
		if e.File == cur.File && e.Offset <= cur.End() {
			if e.End() > cur.End() {
				cur.Length = e.End() - cur.Offset
			}
			continue
		}
		out = append(out, cur)
		cur = e
	}
	return append(out, cur)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
