package blockio

import (
	"testing"
	"testing/quick"
)

func TestSpansSingleBlock(t *testing.T) {
	spans := Spans(1, 100, 200, DefaultBlockSize)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Key != (BlockKey{File: 1, Index: 0}) {
		t.Errorf("key = %v", s.Key)
	}
	if s.Off != 100 || s.Len != 200 || s.Pos != 0 {
		t.Errorf("span = %+v", s)
	}
	if s.Full(DefaultBlockSize) {
		t.Error("partial span reported Full")
	}
}

func TestSpansAlignedMultiBlock(t *testing.T) {
	spans := Spans(7, 0, 3*DefaultBlockSize, DefaultBlockSize)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Key.Index != int64(i) {
			t.Errorf("span %d index = %d", i, s.Key.Index)
		}
		if !s.Full(DefaultBlockSize) {
			t.Errorf("span %d not full: %+v", i, s)
		}
		if s.Pos != int64(i*DefaultBlockSize) {
			t.Errorf("span %d pos = %d", i, s.Pos)
		}
	}
}

func TestSpansUnalignedStraddle(t *testing.T) {
	// Range starts mid-block 0 and ends mid-block 2.
	off := int64(DefaultBlockSize - 10)
	length := int64(DefaultBlockSize + 20)
	spans := Spans(3, off, length, DefaultBlockSize)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	if spans[0].Off != DefaultBlockSize-10 || spans[0].Len != 10 {
		t.Errorf("first span %+v", spans[0])
	}
	if !spans[1].Full(DefaultBlockSize) {
		t.Errorf("middle span %+v", spans[1])
	}
	if spans[2].Off != 0 || spans[2].Len != 10 {
		t.Errorf("last span %+v", spans[2])
	}
}

func TestSpansZeroLength(t *testing.T) {
	if got := Spans(1, 50, 0, DefaultBlockSize); got != nil {
		t.Errorf("zero length: got %v", got)
	}
	if got := Spans(1, 50, -3, DefaultBlockSize); got != nil {
		t.Errorf("negative length: got %v", got)
	}
}

// Property: spans tile the request exactly — contiguous positions, lengths
// summing to the request length, offsets reconstructing file offsets.
func TestSpansTileProperty(t *testing.T) {
	f := func(off uint32, length uint16, bsExp uint8) bool {
		blockSize := 1 << (4 + bsExp%10) // 16B .. 8KB
		offset := int64(off % (1 << 20))
		n := int64(length)
		if n == 0 {
			return Spans(1, offset, n, blockSize) == nil
		}
		spans := Spans(1, offset, n, blockSize)
		var total int64
		pos := int64(0)
		cursor := offset
		for _, s := range spans {
			if s.Pos != pos {
				return false
			}
			if s.FileOffset(blockSize) != cursor {
				return false
			}
			if s.Len <= 0 || s.Len > blockSize {
				return false
			}
			if s.Off < 0 || s.Off+s.Len > blockSize {
				return false
			}
			total += int64(s.Len)
			pos += int64(s.Len)
			cursor += int64(s.Len)
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		off, length int64
		first, cnt  int64
	}{
		{0, 1, 0, 1},
		{0, 4096, 0, 1},
		{0, 4097, 0, 2},
		{4095, 2, 0, 2},
		{8192, 4096, 2, 1},
		{100, 0, 0, 0},
	}
	for _, c := range cases {
		first, cnt := BlockRange(c.off, c.length, 4096)
		if first != c.first || cnt != c.cnt {
			t.Errorf("BlockRange(%d,%d) = (%d,%d), want (%d,%d)",
				c.off, c.length, first, cnt, c.first, c.cnt)
		}
	}
}

func TestBlocks(t *testing.T) {
	if Blocks(0, 4096) != 0 {
		t.Error("Blocks(0) != 0")
	}
	if Blocks(1, 4096) != 1 {
		t.Error("Blocks(1) != 1")
	}
	if Blocks(4096, 4096) != 1 {
		t.Error("Blocks(4096) != 1")
	}
	if Blocks(4097, 4096) != 2 {
		t.Error("Blocks(4097) != 2")
	}
}

func TestExtentOverlapIntersect(t *testing.T) {
	a := Extent{File: 1, Offset: 100, Length: 100}
	b := Extent{File: 1, Offset: 150, Length: 100}
	c := Extent{File: 2, Offset: 150, Length: 100}
	d := Extent{File: 1, Offset: 200, Length: 10}

	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("different files must not overlap")
	}
	if a.Overlaps(d) {
		t.Error("touching extents do not overlap")
	}
	got, ok := a.Intersect(b)
	if !ok || got.Offset != 150 || got.Length != 50 {
		t.Errorf("Intersect = %+v ok=%v", got, ok)
	}
}

func TestMergeAdjacent(t *testing.T) {
	in := []Extent{
		{File: 1, Offset: 0, Length: 10},
		{File: 1, Offset: 10, Length: 10},
		{File: 1, Offset: 25, Length: 5},
		{File: 2, Offset: 30, Length: 5},
	}
	out := MergeAdjacent(in)
	want := []Extent{
		{File: 1, Offset: 0, Length: 20},
		{File: 1, Offset: 25, Length: 5},
		{File: 2, Offset: 30, Length: 5},
	}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("merge[%d] = %+v, want %+v", i, out[i], want[i])
		}
	}
	if MergeAdjacent(nil) != nil {
		t.Error("merge(nil) != nil")
	}
}

func TestMergeAdjacentOverlapContained(t *testing.T) {
	in := []Extent{
		{File: 1, Offset: 0, Length: 100},
		{File: 1, Offset: 10, Length: 20}, // fully contained
	}
	out := MergeAdjacent(in)
	if len(out) != 1 || out[0].Length != 100 {
		t.Errorf("got %+v", out)
	}
}
