// Command pvfs-bench runs the paper's micro-benchmark (§4.1) against a
// live cluster — either an in-process one (the default, for a zero-setup
// demo) or external pvfs-mgr/pvfs-iod daemons over TCP.
//
// Examples:
//
//	# self-contained: boots an in-memory cluster and compares
//	# caching vs no-caching for the given parameters
//	pvfs-bench -d 65536 -l 0.5 -s 0.5 -instances 2 -p 2
//
//	# against a running TCP cluster, caching enabled
//	pvfs-bench -mgr host:7000 -iods h1:7010,h2:7010 -flush h1:7011,h2:7011 \
//	           -caching -d 65536 -total 8388608
//
// The tool reports per-request latency, total completion time per
// instance, and the cache-module counters. The -cpuprofile/-memprofile
// flags write standard pprof profiles (see examples/README.md), and the
// ablation flags -nozerocopy, -novector, -shards, -flushstreams and
// -flushwindow select the copying data path, the per-run miss engine,
// the buffer manager's stripe count, and the write-behind engine's
// stream/window shape (-flushstreams 1 -flushwindow 1 is the serial
// pre-pipeline drain). The admission knobs -policy, -ghostfrac and
// -bypass pick the replacement policy (clock, lru, or the
// scan-resistant ghost policy), size its ghost history, and enable the
// streaming read-around. See docs/TUNING.md for the full knob table.
//
// The in-process iods keep their blocks in memory by default;
// -backend=disk puts each one on a WAL-backed on-disk store instead
// (-datadir picks the directory, -fsync the durability policy):
//
//	pvfs-bench -backend disk -datadir /tmp/pvfs -fsync interval -write
//
// With -chaos the tool instead runs a seeded fault-injection scenario
// under the consistency oracle:
//
//	pvfs-bench -chaos -scenario zipfian -fault partition -seed 42
//
// See docs/TESTING.md for the scenario and fault catalogue.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"pvfscache/internal/cachemod"
	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/cluster"
	"pvfscache/internal/metrics"
	"pvfscache/internal/microbench"
	"pvfscache/internal/pvfs"
	"pvfscache/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pvfs-bench: ")
	var (
		mgrAddr    = flag.String("mgr", "", "mgr address (empty boots an in-process cluster)")
		iodList    = flag.String("iods", "", "comma-separated iod data addresses")
		flushList  = flag.String("flush", "", "comma-separated iod flush addresses")
		caching    = flag.Bool("caching", true, "enable the cache module")
		instances  = flag.Int("instances", 1, "application instances (degree of multiprogramming)")
		p          = flag.Int("p", 2, "processes (nodes) per instance")
		d          = flag.Int64("d", 64<<10, "request size in bytes (per process)")
		total      = flag.Int64("total", 4<<20, "bytes moved per process")
		locality   = flag.Float64("l", 0, "degree of locality in [0,1]")
		sharing    = flag.Float64("s", 0, "degree of inter-instance sharing in [0,1]")
		write      = flag.Bool("write", false, "issue writes instead of reads")
		seed       = flag.Int64("seed", 1, "workload seed")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	var mods modFlags
	flag.IntVar(&mods.readahead, "readahead", 0, "sequential-readahead window in blocks (0 = default, negative disables)")
	flag.BoolVar(&mods.novector, "novector", false, "use the legacy one-Read-per-run miss path (ablation)")
	flag.BoolVar(&mods.nozerocopy, "nozerocopy", false, "use the copying data path (ablation: per-request response buffers, no pooled leases)")
	flag.IntVar(&mods.shards, "shards", 0, "cache lock stripes (0 = power of two >= GOMAXPROCS, 1 = single-mutex ablation)")
	flag.IntVar(&mods.flushStreams, "flushstreams", 0, "concurrent per-iod flush streams (0 = all iods in parallel, 1 = serial ablation)")
	flag.IntVar(&mods.flushWindow, "flushwindow", 0, "in-flight flush frames per stream (0 = default 4, 1 = blocking ablation)")
	policyName := flag.String("policy", "clock", "replacement policy: clock, lru, or ghost (scan-resistant)")
	flag.Float64Var(&mods.ghostFrac, "ghostfrac", 0, "ghost-list size as a fraction of cache capacity under -policy ghost (0 = default 1.0, negative disables)")
	flag.IntVar(&mods.bypass, "bypass", 0, "sequential streak at which streaming reads bypass the cache (0 = disabled)")
	var sf storageFlags
	flag.StringVar(&sf.backend, "backend", "", "iod storage engine for the in-process cluster: mem (default) or disk")
	flag.StringVar(&sf.dataDir, "datadir", "", "data directory for -backend disk (default: a temp dir, removed at exit)")
	flag.StringVar(&sf.fsync, "fsync", "", "disk fsync policy: onclose (default), interval, or always")
	flag.DurationVar(&sf.fsyncInterval, "fsyncinterval", 0, "fsync cadence under -fsync interval (0 = default 100ms)")
	var cf chaosFlags
	registerChaosFlags(&cf)
	flag.Parse()

	if cf.enabled {
		runChaos(cf, sf, *seed)
		return
	}

	pol, err := buffer.ParsePolicy(*policyName)
	if err != nil {
		log.Fatalf("-policy: %v", err)
	}
	mods.policy = pol

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocs accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
		}()
	}

	mb := microbench.Params{
		Instances:   *instances,
		Nodes:       *p,
		RequestSize: *d,
		TotalBytes:  *total,
		Read:        !*write,
		Locality:    *locality,
		Sharing:     *sharing,
		Seed:        *seed,
	}
	if err := mb.Validate(); err != nil {
		log.Fatal(err)
	}

	if *mgrAddr == "" {
		runInProcess(mb, *caching, mods, sf)
		return
	}
	if sf.backend != "" {
		log.Fatal("-backend applies to the in-process cluster only; external daemons own their storage")
	}
	iods := splitList(*iodList)
	flushes := splitList(*flushList)
	if len(iods) == 0 {
		log.Fatal("-iods is required with -mgr")
	}
	runAgainst(mb, *caching, mods, transport.NewTCP(), *mgrAddr, iods, flushes)
}

// modFlags collects the cache-module tuning/ablation flags (see
// docs/TUNING.md for what each one restores or enables).
type modFlags struct {
	readahead    int
	novector     bool
	nozerocopy   bool
	shards       int
	flushStreams int
	flushWindow  int
	policy       buffer.Policy
	ghostFrac    float64
	bypass       int
}

// storageFlags selects the iod storage engine for in-process clusters.
type storageFlags struct {
	backend       string
	dataDir       string
	fsync         string
	fsyncInterval time.Duration
}

// resolveDataDir returns the data directory to use and a cleanup func.
// With -backend disk and no -datadir, the run gets a throwaway temp dir.
func (sf storageFlags) resolveDataDir() (string, func()) {
	if sf.backend != "disk" || sf.dataDir != "" {
		return sf.dataDir, func() {}
	}
	dir, err := os.MkdirTemp("", "pvfs-bench-data-*")
	if err != nil {
		log.Fatalf("-backend disk: %v", err)
	}
	return dir, func() { os.RemoveAll(dir) }
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runInProcess boots a full in-memory cluster and runs the benchmark with
// and without caching for comparison.
func runInProcess(mb microbench.Params, caching bool, mods modFlags, sf storageFlags) {
	dataDir, cleanup := sf.resolveDataDir()
	defer cleanup()
	modes := []bool{caching}
	if caching {
		modes = []bool{true, false}
	}
	for i, withCache := range modes {
		sub := dataDir
		if sub != "" && len(modes) > 1 {
			// Each mode gets a fresh tree so the second run does not
			// replay the first run's files.
			sub = fmt.Sprintf("%s/mode%d", dataDir, i)
		}
		c, err := cluster.Start(cluster.Config{
			IODs:            4,
			ClientNodes:     mb.Nodes,
			Caching:         withCache,
			FlushPeriod:     100 * time.Millisecond,
			ReadaheadWindow: mods.readahead,
			BypassThreshold: mods.bypass,
			DisableVector:   mods.novector,
			DisableZeroCopy: mods.nozerocopy,
			CacheShards:     mods.shards,
			Policy:          mods.policy,
			GhostFrac:       mods.ghostFrac,
			FlushStreams:    mods.flushStreams,
			FlushWindow:     mods.flushWindow,
			Backend:         sf.backend,
			DataDir:         sub,
			Fsync:           sf.fsync,
			FsyncInterval:   sf.fsyncInterval,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "no caching"
		if withCache {
			label = "caching"
		}
		runWorkload(label, mb, func(node int) (*pvfs.Client, error) { return c.NewProcess(node) })
		if withCache {
			printModuleStats(c.Reg)
		}
		c.Close()
	}
}

// runAgainst executes the benchmark against external daemons.
func runAgainst(mb microbench.Params, caching bool, mods modFlags, net transport.Network, mgrAddr string, iods, flushes []string) {
	var modules []*cachemod.Module
	if caching {
		for node := 0; node < mb.Nodes; node++ {
			mod, err := cachemod.New(cachemod.Config{
				Network:       net,
				ClientID:      uint32(node + 1),
				IODDataAddrs:  iods,
				IODFlushAddrs: flushes,
				Buffer: buffer.Config{
					Shards:    mods.shards,
					Policy:    mods.policy,
					GhostFrac: mods.ghostFrac,
				},
				ReadaheadWindow: mods.readahead,
				BypassThreshold: mods.bypass,
				DisableVector:   mods.novector,
				DisableZeroCopy: mods.nozerocopy,
				FlushStreams:    mods.flushStreams,
				FlushWindow:     mods.flushWindow,
			})
			if err != nil {
				log.Fatalf("cache module for node %d: %v", node, err)
			}
			defer mod.Close()
			modules = append(modules, mod)
		}
	}
	newProc := func(node int) (*pvfs.Client, error) {
		cfg := pvfs.Config{
			Network:  net,
			MgrAddr:  mgrAddr,
			IODAddrs: iods,
			ClientID: uint32(node + 1),
		}
		if caching {
			cfg.Transport = modules[node].NewTransport()
		}
		return pvfs.NewClient(cfg)
	}
	label := "no caching"
	if caching {
		label = "caching"
	}
	runWorkload(label, mb, newProc)
}

// runWorkload creates the benchmark files, spawns one goroutine per
// (instance, node) process, and reports timing.
func runWorkload(label string, mb microbench.Params, newProc func(node int) (*pvfs.Client, error)) {
	setup, err := newProc(0)
	if err != nil {
		log.Fatal(err)
	}
	files := mb.Files()
	for name, size := range files {
		f, err := setup.Create(name, pvfs.StripeSpec{})
		if err != nil {
			// Already present from a previous run: fine.
			continue
		}
		// Seed the file so reads have data to fetch.
		chunk := make([]byte, 256<<10)
		for off := int64(0); off < size; off += int64(len(chunk)) {
			n := int64(len(chunk))
			if off+n > size {
				n = size - off
			}
			if _, err := f.WriteAt(chunk[:n], off); err != nil {
				log.Fatalf("seeding %s: %v", name, err)
			}
		}
		f.Close()
	}
	setup.Close()

	type procResult struct {
		instance int
		elapsed  time.Duration
		requests int
	}
	results := make(chan procResult, mb.Instances*mb.Nodes)
	var wg sync.WaitGroup
	start := time.Now()
	for inst := 0; inst < mb.Instances; inst++ {
		for node := 0; node < mb.Nodes; node++ {
			wg.Add(1)
			go func(inst, node int) {
				defer wg.Done()
				client, err := newProc(node)
				if err != nil {
					log.Fatalf("instance %d node %d: %v", inst, node, err)
				}
				defer client.Close()
				handles := make(map[string]*pvfs.File)
				for name := range files {
					f, err := client.Open(name)
					if err != nil {
						log.Fatalf("open %s: %v", name, err)
					}
					handles[name] = f
				}
				buf := make([]byte, mb.RequestSize)
				t0 := time.Now()
				stream := mb.Stream(inst, node)
				for _, req := range stream {
					f := handles[req.File]
					if req.Read {
						if _, err := f.ReadAt(buf, req.Offset); err != nil {
							log.Fatalf("read %s@%d: %v", req.File, req.Offset, err)
						}
					} else {
						if _, err := f.WriteAt(buf, req.Offset); err != nil {
							log.Fatalf("write %s@%d: %v", req.File, req.Offset, err)
						}
					}
				}
				results <- procResult{instance: inst, elapsed: time.Since(t0), requests: len(stream)}
			}(inst, node)
		}
	}
	wg.Wait()
	close(results)

	perInstance := make([]time.Duration, mb.Instances)
	totalReqs := 0
	var totalTime time.Duration
	for r := range results {
		if r.elapsed > perInstance[r.instance] {
			perInstance[r.instance] = r.elapsed
		}
		totalReqs += r.requests
		totalTime += r.elapsed
	}
	fmt.Printf("[%s] d=%d l=%v s=%v instances=%d p=%d\n",
		label, mb.RequestSize, mb.Locality, mb.Sharing, mb.Instances, mb.Nodes)
	for i, t := range perInstance {
		fmt.Printf("  instance %d completion: %v\n", i, t.Round(time.Microsecond))
	}
	if totalReqs > 0 {
		fmt.Printf("  mean request latency:  %v over %d requests (wall %v)\n",
			(totalTime / time.Duration(totalReqs)).Round(time.Microsecond),
			totalReqs, time.Since(start).Round(time.Millisecond))
	}
}

func printModuleStats(reg *metrics.Registry) {
	snap := reg.Snapshot()
	fmt.Printf("  cache: hits=%d misses=%d evictions=%d flushed=%d joins=%d\n",
		snap.Counters["cache.hits"], snap.Counters["cache.misses"],
		snap.Counters["cache.evictions"], snap.Counters["module.flushed_blocks"],
		snap.Counters["module.fetch_joins"])
}
