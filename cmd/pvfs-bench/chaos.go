package main

import (
	"flag"
	"log"
	"os"
	"time"

	"pvfscache/internal/chaos"
	"pvfscache/internal/workload"
)

// chaosFlags selects and sizes a chaos run (-chaos mode). The workload
// seed comes from the shared -seed flag; everything here is deterministic
// given that seed, and a failing run prints the seed plus a saved trace
// and the `go test` command that replays it.
type chaosFlags struct {
	enabled  bool
	scenario string
	fault    string
	gc       bool
	tcp      bool
	clients  int
	nodes    int
	ops      int
	fileSize int64
	maxIO    int64
	traceDir string
}

func registerChaosFlags(cf *chaosFlags) {
	flag.BoolVar(&cf.enabled, "chaos", false, "run a seeded chaos scenario instead of the micro-benchmark")
	flag.StringVar(&cf.scenario, "scenario", "sequential", "chaos workload scenario: sequential, strided, zipfian, prodcons, or metadata")
	flag.StringVar(&cf.fault, "fault", "connkill", "chaos fault: none, connkill, crash, partition, brownout, restart (needs -backend disk, implied), or a membership fault — killpeer, join, drain (imply -gc; gc-safe scenarios only)")
	flag.BoolVar(&cf.gc, "gc", false, "run the cooperative global cache in mgr-joined mode (gc-safe scenarios only; membership faults imply it)")
	flag.BoolVar(&cf.tcp, "tcp", false, "run the chaos cluster over loopback TCP instead of the in-memory fabric")
	flag.IntVar(&cf.clients, "clients", 8, "chaos client processes")
	flag.IntVar(&cf.nodes, "nodes", 2, "chaos client nodes (clients are spread across them)")
	flag.IntVar(&cf.ops, "ops", 120, "chaos operations per client")
	flag.Int64Var(&cf.fileSize, "filesize", 1<<20, "chaos workload file size in bytes")
	flag.Int64Var(&cf.maxIO, "maxio", 16<<10, "chaos maximum request size in bytes")
	flag.StringVar(&cf.traceDir, "tracedir", "", "always save the op trace here (failures save one regardless)")
}

// runChaos boots a fault-injected cluster, drives the scenario under the
// consistency oracle, and reports the verdict. Exit status 1 means the
// oracle rejected the run.
func runChaos(cf chaosFlags, sf storageFlags, seed int64) {
	if _, err := workload.Lookup(cf.scenario); err != nil {
		log.Fatal(err)
	}
	log.Printf("chaos: %s/%s seed=%d clients=%d nodes=%d ops=%d tcp=%v",
		cf.scenario, cf.fault, seed, cf.clients, cf.nodes, cf.ops, cf.tcp)
	res, err := chaos.Run(chaos.RunConfig{
		Scenario: cf.scenario,
		Fault:    cf.fault,
		Seed:     seed,
		Params: workload.Params{
			Clients:      cf.clients,
			Nodes:        cf.nodes,
			OpsPerClient: cf.ops,
			FileSize:     cf.fileSize,
			MaxIO:        cf.maxIO,
		},
		GlobalCache: cf.gc,
		TCP:         cf.tcp,
		Backend:     sf.backend,
		DataDir:     sf.dataDir,
		TraceDir:    cf.traceDir,
		Log:         log.Printf,
	})
	if err != nil {
		log.Printf("FAIL: %v", err)
		os.Exit(1)
	}
	faultWindow := "fault never engaged"
	if res.FaultStart > 0 {
		faultWindow = (time.Duration(res.FaultEnd - res.FaultStart)).String() + " under fault"
	}
	log.Printf("PASS: %d ops, %d op errors (all within the fault window), %d unresolved writes, %s, %v total",
		res.Ops, res.OpErrors, res.DoubtWrites, faultWindow, res.Elapsed)
	if res.TracePath != "" {
		log.Printf("trace: %s", res.TracePath)
	}
}
