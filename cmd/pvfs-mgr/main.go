// Command pvfs-mgr runs the metadata server over TCP. One instance serves
// an entire cluster:
//
//	pvfs-mgr -addr :7000 -iods 4
//
// Clients (pvfs-bench, pvfs-cli, or programs using internal/pvfs) point
// their -mgr flag at this address.
package main

import (
	"flag"
	"log"

	"pvfscache/internal/admin"
	"pvfscache/internal/metrics"
	"pvfscache/internal/mgr"
	"pvfscache/internal/transport"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pvfs-mgr: ")
	var (
		addr      = flag.String("addr", ":7000", "listen address")
		iods      = flag.Int("iods", 4, "number of I/O daemons in the cluster")
		adminAddr = flag.String("admin", "", "admin HTTP listen address (metrics, pprof); empty disables")
	)
	flag.Parse()

	net := transport.NewTCP()
	l, err := net.Listen(*addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("metadata server listening on %s (%d iods)", l.Addr(), *iods)
	reg := metrics.NewRegistry()
	if *adminAddr != "" {
		a, aerr := admin.Start(*adminAddr, admin.Config{Registry: reg})
		if aerr != nil {
			log.Fatalf("admin: %v", aerr)
		}
		defer a.Close()
		log.Printf("admin on http://%s/metrics", a.Addr())
	}
	srv := mgr.New(*iods, reg)
	if err := srv.Serve(l); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
