// Command pvfs-iod runs one I/O daemon over TCP: a data port for
// read/write/sync-write traffic and a flush port for the cache modules'
// write-behind batches.
//
//	pvfs-iod -id 0 -data :7010 -flush :7011
//
// Run one instance per storage node, then list every daemon's data and
// flush addresses (in -id order) on the clients.
package main

import (
	"flag"
	"log"

	"pvfscache/internal/admin"
	"pvfscache/internal/iod"
	"pvfscache/internal/metrics"
	"pvfscache/internal/transport"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pvfs-iod: ")
	var (
		id        = flag.Int("id", 0, "daemon index in the cluster iod list")
		dataAddr  = flag.String("data", ":7010", "data port listen address")
		flushAddr = flag.String("flush", ":7011", "flush port listen address")
		blockSize = flag.Int("block", 4096, "cache block size used for the coherence directory")
		adminAddr = flag.String("admin", "", "admin HTTP listen address (metrics, pprof); empty disables")
	)
	flag.Parse()

	net := transport.NewTCP()
	dl, err := net.Listen(*dataAddr)
	if err != nil {
		log.Fatalf("listen data %s: %v", *dataAddr, err)
	}
	fl, err := net.Listen(*flushAddr)
	if err != nil {
		log.Fatalf("listen flush %s: %v", *flushAddr, err)
	}
	log.Printf("iod %d: data on %s, flush on %s", *id, dl.Addr(), fl.Addr())

	reg := metrics.NewRegistry()
	if *adminAddr != "" {
		a, err := admin.Start(*adminAddr, admin.Config{Registry: reg})
		if err != nil {
			log.Fatalf("admin: %v", err)
		}
		defer a.Close()
		log.Printf("iod %d: admin on http://%s/metrics", *id, a.Addr())
	}

	srv := iod.New(*id, *blockSize, net, reg)
	errs := make(chan error, 2)
	go func() { errs <- srv.ServeData(dl) }()
	go func() { errs <- srv.ServeFlush(fl) }()
	if err := <-errs; err != nil {
		log.Fatalf("serve: %v", err)
	}
}
