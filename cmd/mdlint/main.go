// Command mdlint is a dependency-free markdown link checker: it walks
// the repository's *.md files (root, docs/, examples/, bench/, and any
// other tracked directory), extracts inline links and code-span file
// references, and verifies that every relative link target exists on
// disk. External links (http/https/mailto) are not fetched — CI must
// not flake on the network — and pure fragments (#section) are skipped.
//
// It exists so the documentation pass cannot rot silently: a renamed
// file or section breaks the docs CI job, not a future reader.
//
//	go run ./cmd/mdlint [root]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repo and intentionally out of scope.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// Skip VCS internals and build droppings.
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") {
			return nil
		}
		broken += checkFile(path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile reports the number of broken relative links in one file.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlint: %s: %v\n", path, err)
		return 1
	}
	broken := 0
	dir := filepath.Dir(path)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not fetched
			case strings.HasPrefix(target, "#"):
				continue // in-page fragment
			}
			// Strip a trailing fragment from a file link.
			file, _, _ := strings.Cut(target, "#")
			if file == "" {
				continue
			}
			resolved := filepath.Join(dir, file)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link: %s (resolved %s)\n", path, i+1, target, resolved)
				broken++
			}
		}
	}
	return broken
}
