// Command benchdiff compares two `go test -bench -benchmem` outputs — a
// committed baseline and a fresh run — and renders a benchstat-style
// table of ns/op, B/op and allocs/op deltas. It exists so the CI
// benchmark job can fail loudly on allocation regressions instead of
// burying them in an artifact: wall-clock numbers vary with runner
// hardware and load, but B/op and allocs/op are near-deterministic, so
// those are the gated columns.
//
//	benchdiff [-gate-bytes 1.5] [-gate-allocs 2.0] baseline.txt new.txt
//
// The tool exits nonzero when any benchmark present in both files grew
// its B/op (or allocs/op) beyond the gate factor. Benchmarks that exist
// in only one file are reported but never gate, so adding or retiring a
// benchmark does not break the job.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	name   string
	nsOp   float64
	bOp    float64
	allocs float64
	hasMem bool
}

func main() {
	gateBytes := flag.Float64("gate-bytes", 1.5, "fail when B/op grows beyond this factor of the baseline")
	gateAllocs := flag.Float64("gate-allocs", 2.0, "fail when allocs/op grows beyond this factor of the baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.txt new.txt")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("%-46s %14s %14s %8s   %14s %14s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "Δ", "base B/op", "new B/op", "Δ")
	failed := false
	for _, b := range base {
		c, ok := cur[b.name]
		if !ok {
			fmt.Printf("%-46s %14.0f %14s\n", b.name, b.nsOp, "(gone)")
			continue
		}
		fmt.Printf("%-46s %14.0f %14.0f %8s   %14.0f %14.0f %8s\n",
			b.name, b.nsOp, c.nsOp, delta(b.nsOp, c.nsOp),
			b.bOp, c.bOp, delta(b.bOp, c.bOp))
		if b.hasMem && c.hasMem {
			if regressed(b.bOp, c.bOp, *gateBytes, bytesFloor) {
				fmt.Printf("  FAIL: %s B/op regressed %.0f -> %.0f (> %.2fx gate)\n",
					b.name, b.bOp, c.bOp, *gateBytes)
				failed = true
			}
			if regressed(b.allocs, c.allocs, *gateAllocs, allocsFloor) {
				fmt.Printf("  FAIL: %s allocs/op regressed %.0f -> %.0f (> %.2fx gate)\n",
					b.name, b.allocs, c.allocs, *gateAllocs)
				failed = true
			}
		}
	}
	for name, c := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-46s %14s %14.0f %8s   %14s %14.0f\n", name, "(new)", c.nsOp, "", "", c.bOp)
		}
	}
	if failed {
		fmt.Println("\nbenchdiff: allocation regression against the committed baseline")
		os.Exit(1)
	}
}

// Absolute floors below which the gate never fires, so noise around tiny
// values (a 16-byte or 3-alloc benchmark doubling) cannot trip it. They
// are per metric: 4096 would swallow every allocs/op regression in the
// baseline, whose largest entry is in the hundreds.
const (
	bytesFloor  = 4096
	allocsFloor = 16
)

// regressed reports whether cur exceeds base by more than factor and the
// metric's absolute floor.
func regressed(base, cur, factor, floor float64) bool {
	if cur <= floor {
		return false
	}
	return base >= 0 && cur > base*factor
}

func delta(base, cur float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.0f%%", (cur-base)/base*100)
}

// parseFile extracts benchmark result lines. Multiple runs of the same
// benchmark (e.g. -count) keep the last occurrence; sub-benchmark CPU
// suffixes (-8) are stripped so runs from machines with different core
// counts compare.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{name: trimCPUSuffix(fields[0])}
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsOp, ok = v, true
			case "B/op":
				r.bOp, r.hasMem = v, true
			case "allocs/op":
				r.allocs = v
			}
		}
		if ok {
			out[r.name] = r
		}
	}
	return out, sc.Err()
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker, if present.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
