// Command experiments regenerates every figure of the paper's evaluation
// (Figures 4-8) plus the ablation studies on the discrete-event cluster
// model, and prints the series as text tables.
//
// Usage:
//
//	experiments [-figure all|4|5|6|7|8|ablations] [-total bytes] [-iods n] [-seed n]
//
// The output tables are the repository's paper-versus-measured record.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pvfscache/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		figure = flag.String("figure", "all", "which figure to regenerate: all, 4, 5, 6, 7, 8, or ablations")
		total  = flag.Int64("total", 8<<20, "application-level bytes moved per configuration")
		iods   = flag.Int("iods", 4, "number of I/O daemons")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	o := harness.Options{TotalBytes: *total, IODs: *iods, Seed: *seed}
	start := time.Now()

	var figs []harness.Figure
	var err error
	switch *figure {
	case "all":
		figs, err = harness.All(o)
	case "4":
		figs, err = harness.Figure4(o)
	case "5":
		figs, err = harness.Figure5(o)
	case "6":
		figs, err = harness.Figure6(o)
	case "7":
		figs, err = harness.Figure7(o)
	case "8":
		figs, err = harness.Figure8(o)
	case "ablations":
		for _, gen := range []func(harness.Options) (harness.Figure, error){
			harness.AblationEviction,
			harness.AblationFlushPeriod,
			harness.AblationWatermarks,
		} {
			fig, gerr := gen(o)
			if gerr != nil {
				err = gerr
				break
			}
			figs = append(figs, fig)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -figure %q\n", *figure)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(harness.RenderAll(figs))
	fmt.Printf("\nregenerated %d figure panel(s) in %v\n", len(figs), time.Since(start).Round(time.Millisecond))
}
