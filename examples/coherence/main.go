// Coherence: the paper's default read/write path maintains no coherence
// between node caches — a read simply returns whatever version it finds.
// For applications that need it, the system provides sync-write, which
// propagates the write to the iod and invalidates every other node cache
// holding the touched blocks before returning.
//
// This example demonstrates both behaviours on a live two-node cluster:
// a stale read after a plain write, then a coherent read after a
// sync-write.
//
//	go run ./examples/coherence
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
)

func main() {
	log.SetFlags(0)
	c, err := cluster.Start(cluster.Config{
		IODs:        2,
		ClientNodes: 2,
		Caching:     true,
		FlushPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A writer on node 0 and a reader on node 1.
	writer, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	reader, err := c.NewProcess(1)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	wf, err := writer.Create("coh/config.bin", pvfs.StripeSpec{PCount: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := wf.WriteAt(bytes.Repeat([]byte{'A'}, 8192), 0); err != nil {
		log.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		log.Fatal(err)
	}

	rf, err := reader.Open("coh/config.bin")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 8192)
	must(rf.ReadAt(buf, 0))
	fmt.Printf("node 1 initial read:            %c (cached)\n", buf[0])

	// Plain write: node 1's cached copy is NOT invalidated — the default
	// mechanism trades coherence for speed, as most HPC workloads are
	// read-shared.
	if _, err := wf.WriteAt(bytes.Repeat([]byte{'B'}, 8192), 0); err != nil {
		log.Fatal(err)
	}
	if err := c.Module(0).FlushAll(); err != nil {
		log.Fatal(err)
	}
	must(rf.ReadAt(buf, 0))
	fmt.Printf("node 1 after plain write of B:  %c (stale by design)\n", buf[0])

	// Sync-write: the iod invalidates node 1's copy before acknowledging,
	// so the next read fetches the new version.
	if _, err := wf.SyncWriteAt(bytes.Repeat([]byte{'C'}, 8192), 0); err != nil {
		log.Fatal(err)
	}
	must(rf.ReadAt(buf, 0))
	fmt.Printf("node 1 after sync-write of C:   %c (invalidated and re-fetched)\n", buf[0])

	snap := c.Reg.Snapshot()
	fmt.Printf("\niod invalidations delivered: %d; cache invalidations received: %d\n",
		snap.Counters["iod.invalidations"], snap.Counters["cache.invalidations"])
}

func must(n int, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
