// Writebehind: watch the pipelined write-behind engine drain a dirty
// cache. Boots an in-process cluster (4 iods, 1 client node), fills
// 2 MB of dirty blocks through the cache — every write acknowledged
// from memory — then drains them with FlushAll and shows the counters
// moving: frames sent, blocks flushed, adjacent blocks coalesced into
// contiguous runs. The same storm is then drained by the seed-shape
// ablation (FlushStreams=1, FlushWindow=1: one blocking frame at a
// time, serially across iods) for comparison.
//
//	go run ./examples/writebehind
//
// See DESIGN.md §6 for the dirty-block lifecycle and docs/TUNING.md for
// the FlushStreams/FlushWindow/FlushBatch knobs.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
)

// storm writes 2 MB through one process's cache and drains it, printing
// the write-behind counters before and after.
func storm(label string, cfg cluster.Config) time.Duration {
	c, err := cluster.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	proc, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	// Default striping: 64 KB strips round-robin over the 4 iods. Each
	// strip is 16 consecutive 4 KB cache blocks on one iod, so every
	// stream's share of the dirty list is full of adjacent blocks — the
	// coalescer merges each strip into one contiguous wire run.
	f, err := proc.Create("storm.dat", pvfs.StripeSpec{})
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC5}, 2<<20)
	if _, err := f.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}

	// Warm up the flush path once (lazy connection dials, pools) so the
	// timed drain measures the engine, not the first dial.
	if err := c.Module(0).FlushAll(); err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt(payload, 0); err != nil { // re-dirty everything
		log.Fatal(err)
	}

	mod := c.Module(0)
	before := c.Reg.Snapshot()
	fmt.Printf("[%s]\n", label)
	fmt.Printf("  before drain: %d dirty blocks buffered, write acked from memory\n",
		mod.Buffer().DirtyCount())

	t0 := time.Now()
	if err := mod.FlushAll(); err != nil {
		log.Fatal(err)
	}
	drain := time.Since(t0)

	d := c.Reg.Snapshot().Diff(before)
	fmt.Printf("  after drain:  %d dirty blocks; drained in %v\n",
		mod.Buffer().DirtyCount(), drain.Round(10*time.Microsecond))
	fmt.Printf("  counters: %d flush frames, %d blocks flushed, %d blocks rode coalesced runs (%d wire runs at the iods)\n",
		d["module.flush_rounds"], d["module.flushed_blocks"],
		d["module.flush_coalesced"], d["iod.flush_runs"])

	// Durability: the iods now hold every byte (FlushAll returned with
	// nothing dirty, and the stores grew to the file's striped size).
	var stored int64
	for _, iod := range c.IODs {
		sz, _ := iod.Store().Size(f.ID())
		stored += sz
	}
	fmt.Printf("  durability: iod stores hold %d bytes of file %d\n", stored, f.ID())
	return drain
}

func main() {
	log.SetFlags(0)
	base := cluster.Config{
		IODs:        4,
		ClientNodes: 1,
		Caching:     true,
		CacheBlocks: 1024,      // 4 MB cache: the 2 MB storm fits
		FlushPeriod: time.Hour, // background period off: FlushAll does the draining
	}

	piped := storm("pipelined: 4 streams × window 4 (default)", base)

	serial := base
	serial.FlushStreams = 1
	serial.FlushWindow = 1
	serialTime := storm("seed-shape ablation: -flushstreams 1 -flushwindow 1", serial)

	fmt.Printf("\npipelined %v vs serial %v — over a real network/disk the gap widens\n",
		piped.Round(10*time.Microsecond), serialTime.Round(10*time.Microsecond))
	fmt.Println("with the per-frame service latency the streams overlap (see")
	fmt.Println("internal/cachemod's BenchmarkFlushDrainPipelined vs ...Serial).")
}
