// Analysis cycle: the paper's Figure 1 motivates the work with a
// computational-science pipeline — a mesh generator, a solver, and a
// visualization stage — running as separate applications that share
// datasets on disk. This example runs all three stages as separate PVFS
// client processes on one cluster node and shows how the shared cache
// module turns the inter-application hand-offs into memory-speed hits.
//
//	go run ./examples/analysis-cycle
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"time"

	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
)

const (
	meshPoints = 16384
	meshFile   = "cycle/mesh.bin"
	fieldFile  = "cycle/field.bin"
)

func main() {
	log.SetFlags(0)
	c, err := cluster.Start(cluster.Config{
		IODs:        4,
		ClientNodes: 1,
		Caching:     true,
		FlushPeriod: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Println("=== stage 1: mesh generator ===")
	generator(c)
	report(c, "generator wrote the mesh")

	fmt.Println("=== stage 2: solver ===")
	before := c.Reg.Snapshot()
	solver(c)
	diff := c.Reg.Snapshot().Diff(before)
	fmt.Printf("solver read the mesh with %d cache hits and %d iod reads\n",
		diff["cache.hits"], diff["iod.reads"])
	report(c, "solver wrote the field")

	fmt.Println("=== stage 3: visualizer ===")
	before = c.Reg.Snapshot()
	checksum := visualizer(c)
	diff = c.Reg.Snapshot().Diff(before)
	fmt.Printf("visualizer consumed the field with %d cache hits and %d iod reads\n",
		diff["cache.hits"], diff["iod.reads"])
	fmt.Printf("field checksum: %.4f\n", checksum)
}

// generator is application 1: it produces a mesh of float64 coordinates.
func generator(c *cluster.Cluster) {
	proc, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()
	f, err := proc.Create(meshFile, pvfs.StripeSpec{})
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, meshPoints*8)
	for i := 0; i < meshPoints; i++ {
		x := float64(i) / meshPoints * 2 * math.Pi
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		log.Fatal(err)
	}
}

// solver is application 2: it reads the mesh (hitting the node cache the
// generator populated) and writes a derived field.
func solver(c *cluster.Cluster) {
	proc, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()
	mesh, err := proc.Open(meshFile)
	if err != nil {
		log.Fatal(err)
	}
	in := make([]byte, meshPoints*8)
	if _, err := mesh.ReadAt(in, 0); err != nil {
		log.Fatal(err)
	}
	out := make([]byte, meshPoints*8)
	for i := 0; i < meshPoints; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(in[i*8:]))
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(math.Sin(x)))
	}
	field, err := proc.Create(fieldFile, pvfs.StripeSpec{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := field.WriteAt(out, 0); err != nil {
		log.Fatal(err)
	}
}

// visualizer is application 3: it consumes the solver's output, again
// straight from the shared cache.
func visualizer(c *cluster.Cluster) float64 {
	proc, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()
	field, err := proc.Open(fieldFile)
	if err != nil {
		log.Fatal(err)
	}
	in := make([]byte, meshPoints*8)
	if _, err := field.ReadAt(in, 0); err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < meshPoints; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(in[i*8:]))
		sum += v * v
	}
	return sum / meshPoints
}

func report(c *cluster.Cluster, what string) {
	st := c.Module(0).Buffer().Stats()
	fmt.Printf("%s: cache holds %d blocks (%d dirty)\n", what, st.Resident, st.Dirty)
}
