// Quickstart: boot a complete in-process cluster (metadata server, four
// I/O daemons, one client node with the cache module), write a striped
// file through the cache, read it back twice, and show the effect of the
// per-node cache: the second read never touches the network.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
)

func main() {
	log.SetFlags(0)

	// Boot: 4 iods, 1 client node, caching enabled — the paper's
	// "caching version" in miniature.
	c, err := cluster.Start(cluster.Config{
		IODs:        4,
		ClientNodes: 1,
		Caching:     true,
		FlushPeriod: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// One application process on node 0.
	proc, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	// Create a file striped over all four iods in 64 KB strips.
	f, err := proc.Create("demo/data.bin", pvfs.StripeSpec{SSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("pvfs-cache!"), 20000) // ~220 KB
	if _, err := f.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes striped over %d iods\n", len(payload), len(c.IODs))

	// The write was absorbed by the cache module (write-behind); the
	// flusher is propagating it to the iods in the background.
	stats := c.Module(0).Buffer().Stats()
	fmt.Printf("cache after write: %d resident blocks, %d dirty\n", stats.Resident, stats.Dirty)

	// Read it back. The first read is served from the cache too — the
	// write left the blocks resident.
	before := c.Reg.Snapshot()
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("read returned wrong data")
	}
	diff := c.Reg.Snapshot().Diff(before)
	fmt.Printf("read-back: %d cache hits, %d iod reads (0 = fully cache-served)\n",
		diff["cache.hits"], diff["iod.reads"])

	// Force everything out to the daemons and verify durability.
	if err := c.FlushAll(); err != nil {
		log.Fatal(err)
	}
	var stored int64
	for _, d := range c.IODs {
		sz, _ := d.Store().Size(f.ID())
		stored += sz
	}
	fmt.Printf("after flush: iods hold data for file %d (sizes sum across strips)\n", f.ID())
	_ = stored

	// A second process on the same node shares the cache: its read is an
	// inter-application hit, the paper's headline mechanism.
	proc2, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc2.Close()
	f2, err := proc2.Open("demo/data.bin")
	if err != nil {
		log.Fatal(err)
	}
	before = c.Reg.Snapshot()
	if _, err := f2.ReadAt(got, 0); err != nil {
		log.Fatal(err)
	}
	diff = c.Reg.Snapshot().Diff(before)
	fmt.Printf("second process read: %d cache hits, %d iod reads — data shared across processes\n",
		diff["cache.hits"], diff["iod.reads"])
}
