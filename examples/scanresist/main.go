// Scanresist: watch discretionary admission defend a working set from a
// streaming scan. Boots an in-process cluster (4 iods, 1 client node,
// 1 MB cache), warms a 512 KB working set until it is promoted to the
// protected segment, then streams a 4 MB file through the cache — four
// times the cache's size — and re-reads the working set to see how much
// of it survived. The same storm runs under three configurations:
//
//   - the ghost policy with the streaming bypass: the detected scan is
//     served read-around after a few blocks and never admitted at all
//   - the ghost policy alone: the scan is admitted to probation, where
//     it can only evict itself — the protected working set is untouched
//   - the LRU ablation: one list, so the scan flushes the working set
//
// Each run prints the admission counters (cache.ghost_hits,
// cache.admission_rejects, cache.bypass_reads, cache.protected_evictions
// and module.stream_bypasses) and the number of working-set blocks that
// had to be refetched from the iods afterwards — zero under the ghost
// policy, the whole set under LRU. A revisit of recently evicted scan
// blocks lights up the ghost list: under the ghost policy they are
// remembered and re-admitted straight to the protected segment.
//
//	go run ./examples/scanresist
//
// See DESIGN.md §7 for the admission state machine and docs/TUNING.md
// for the Policy/GhostFrac/BypassThreshold knobs and the per-open
// cache-policy hints (the seeding phase below uses a don't-cache hint
// so the storm starts from a cold cache).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"pvfscache/internal/cachemod/buffer"
	"pvfscache/internal/cluster"
	"pvfscache/internal/pvfs"
)

const (
	blockSize  = 4096
	wsBlocks   = 128  // 512 KB working set: fits the protected segment
	scanBlocks = 1024 // 4 MB scan: four times the whole cache
)

// run boots a cluster with the given admission configuration, runs the
// warm/scan/re-read storm, and returns the number of working-set blocks
// refetched from the iods after the scan.
func run(label string, cfg cluster.Config) int64 {
	c, err := cluster.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	proc, err := c.NewProcess(0)
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	// Seed both files write-around: a don't-cache hint routes the writes
	// straight to the iods, so the measured phases start from a cold,
	// clean cache.
	seed := func(name string, blocks int) *pvfs.File {
		f, err := proc.Create(name, pvfs.StripeSpec{})
		if err != nil {
			log.Fatal(err)
		}
		f.HintCachePolicy(pvfs.CacheNone)
		if _, err := f.WriteAt(bytes.Repeat([]byte{0xA7}, blocks*blockSize), 0); err != nil {
			log.Fatal(err)
		}
		f.HintCachePolicy(pvfs.CacheDefault)
		return f
	}
	ws := seed("ws.dat", wsBlocks)
	scan := seed("scan.dat", scanBlocks)
	defer ws.Close()
	defer scan.Close()

	readSeq := func(f *pvfs.File, blocks int) {
		buf := make([]byte, blockSize)
		for i := 0; i < blocks; i++ {
			if _, err := f.ReadAt(buf, int64(i)*blockSize); err != nil {
				log.Fatal(err)
			}
		}
	}
	// readPerm touches count blocks from start in a permuted order (mult
	// must be odd, hence coprime to the power-of-two count): hot-set
	// accesses with no constant stride, which is exactly what separates a
	// working set from a scan in the detector's eyes.
	readPerm := func(f *pvfs.File, start, count, mult int) {
		buf := make([]byte, blockSize)
		for i := 0; i < count; i++ {
			idx := start + (i*mult)%count
			if _, err := f.ReadAt(buf, int64(idx)*blockSize); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Warm the working set: the first pass installs it, the second
	// promotes it to the protected segment (under the ghost policy).
	readPerm(ws, 0, wsBlocks, 73)
	readPerm(ws, 0, wsBlocks, 73)

	// The storm: stream 4 MB through the cache.
	before := c.Reg.Snapshot()
	readSeq(scan, scanBlocks)
	d := c.Reg.Snapshot().Diff(before)

	fmt.Printf("[%s]\n", label)
	fmt.Printf("  scan:    %d blocks evicted — %d from the protected segment; %d admissions rejected\n",
		d["cache.evictions"], d["cache.protected_evictions"], d["cache.admission_rejects"])
	fmt.Printf("           %d block reads bypassed the cache (%d detected-stream requests)\n",
		d["cache.bypass_reads"], d["module.stream_bypasses"])

	// Revisit 32 recently evicted scan blocks (in permuted order, so the
	// revisit itself is not detected as a stream). Under the ghost policy
	// their ghost entries are still live: the re-admission is recognized
	// as a recency hit and goes straight to the protected segment.
	before = c.Reg.Snapshot()
	readPerm(scan, 640, 32, 19)
	d = c.Reg.Snapshot().Diff(before)
	fmt.Printf("  revisit: %d of 32 recently evicted blocks recognized by the ghost list\n",
		d["cache.ghost_hits"])

	// Re-read the working set: every block the scan displaced now costs
	// an iod round trip again.
	before = c.Reg.Snapshot()
	readPerm(ws, 0, wsBlocks, 73)
	d = c.Reg.Snapshot().Diff(before)
	refetched := d["iod.reads"]
	fmt.Printf("  after:   %d/%d working-set blocks had to be refetched from the iods\n",
		refetched, wsBlocks)
	return refetched
}

func main() {
	log.SetFlags(0)
	base := cluster.Config{
		IODs:            4,
		ClientNodes:     1,
		Caching:         true,
		CacheBlocks:     256,       // 1 MB cache
		CacheShards:     1,         // one stripe: deterministic replacement order
		FlushPeriod:     time.Hour, // write-behind is not today's story
		ReadaheadWindow: -1,        // block-by-block reads keep the admission story visible
	}

	ghostBypass := base
	ghostBypass.Policy = buffer.PolicyGhost
	ghostBypass.BypassThreshold = 8
	withBypass := run("ghost policy + streaming bypass (-policy ghost -bypass 8)", ghostBypass)

	ghostOnly := base
	ghostOnly.Policy = buffer.PolicyGhost
	ghostAlone := run("ghost policy alone (-policy ghost)", ghostOnly)

	lru := base
	lru.Policy = buffer.PolicyLRU
	flushed := run("lru ablation (-policy lru)", lru)

	fmt.Printf("\nworking-set refetches after a 4x-cache scan: ghost+bypass %d, ghost %d, lru %d of %d\n",
		withBypass, ghostAlone, flushed, wsBlocks)
	fmt.Println("the ghost policy's probation segment lets the scan only evict itself;")
	fmt.Println("the bypass keeps the detected stream out of the cache entirely.")
}
