// Scheduling: the paper's Section 4.2.4 asks whether inter-application
// caching can compensate for a loss of parallelism — should a scheduler
// co-locate two applications that share data on the same nodes (enabling
// the shared cache) or spread them over disjoint nodes (maximizing
// parallelism)?
//
// This example runs the question on the calibrated discrete-event model
// for a sweep of locality and sharing degrees and prints the placement a
// cache-aware scheduler should choose, reproducing the paper's headline
// result: at high locality, co-location wins even against twice the
// nodes.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"time"

	"pvfscache/internal/microbench"
	"pvfscache/internal/sim"
	"pvfscache/internal/simcluster"
)

func main() {
	log.SetFlags(0)
	const (
		p     = 3 // nodes per application
		d     = 64 << 10
		total = 8 << 20
	)
	fmt.Printf("two applications, %d nodes each, d=%dKB, %dMB per run\n",
		p, d>>10, total>>20)
	fmt.Printf("%-10s %-10s %16s %16s   %s\n", "locality", "sharing",
		"co-located", "spread (2x nodes)", "scheduler choice")

	for _, l := range []float64{0, 0.5, 1.0} {
		for _, s := range []float64{0.25, 1.0} {
			coloc := run(true, simcluster.SameNodes(2, p), p, d, total, l, s)
			spread := run(false, simcluster.DisjointNodes(2, p), 2*p, d, total, l, s)
			choice := "SPREAD (parallelism wins)"
			if coloc < spread {
				choice = "CO-LOCATE (cache wins, frees 3 nodes)"
			}
			fmt.Printf("%-10v %-10v %16v %16v   %s\n",
				l, s, coloc.Round(time.Millisecond), spread.Round(time.Millisecond), choice)
		}
	}
	fmt.Println("\nAt l=1 the shared cache fully offsets the halved node count —")
	fmt.Println("the paper's argument that schedulers should be locality-aware.")
}

func run(caching bool, pl simcluster.Placement, nodes int, d, total int64, l, s float64) time.Duration {
	env := sim.NewEnv()
	c := simcluster.New(env, simcluster.DefaultParams(), 4, nodes, caching)
	mb := microbench.Params{
		Instances:   2,
		Nodes:       3,
		RequestSize: d / 3,
		TotalBytes:  total / 3,
		Read:        true,
		Locality:    l,
		Sharing:     s,
		Seed:        1,
	}
	res, err := simcluster.Run(c, mb, pl)
	if err != nil {
		log.Fatal(err)
	}
	return res.MaxInstanceTime()
}
